//! A textual script format for transformation sequences.
//!
//! §5 discusses Whitfield & Soffa's GOSpeL — "a specification language …
//! in which an optimization is specified by preconditions and actions" —
//! and positions this framework as its natural loop-transformation
//! extension. This module provides the serialization side: a sequence
//! round-trips through a small line-oriented script, so recipes can be
//! stored, diffed, and replayed by external tools:
//!
//! ```text
//! n = 3
//! reverse_permute rev=[F F F] perm=[2 0 1]
//! block i=0 j=2 bsize=[bj; bk; bi]
//! parallelize flags=[1 0 1 0 0 0]
//! reverse_permute rev=[F F F F F F] perm=[0 2 1 3 4 5]
//! coalesce i=0 j=1
//! ```
//!
//! `#` starts a comment; blank lines are ignored; `unimodular` rows are
//! written `m=[1 1; 1 0]`.

use crate::sequence::{Step, TransformSeq};
use crate::template::Template;
use irlt_ir::{parse_expr, Expr};
use irlt_unimodular::IntMatrix;
use std::fmt;
use std::fmt::Write as _;

/// A script parse/serialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScriptError {
    /// 1-based line (0 for serialization-side errors).
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "script error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScriptError {}

fn err(line: usize, message: impl Into<String>) -> ScriptError {
    ScriptError {
        line,
        message: message.into(),
    }
}

impl TransformSeq {
    /// Serializes the sequence to script text.
    ///
    /// # Errors
    ///
    /// Returns [`ScriptError`] if the sequence contains a custom (user
    /// trait object) step, which has no textual form.
    ///
    /// # Examples
    ///
    /// ```
    /// use irlt_core::TransformSeq;
    /// use irlt_ir::Expr;
    ///
    /// let t = TransformSeq::new(2)
    ///     .block(0, 1, vec![Expr::var("b1"), Expr::var("b2")])?
    ///     .parallelize(vec![true, false, false, false])?;
    /// let script = t.to_script().unwrap();
    /// let back = TransformSeq::from_script(&script).unwrap();
    /// assert_eq!(back.to_script().unwrap(), script);
    /// # Ok::<(), irlt_core::SequenceError>(())
    /// ```
    pub fn to_script(&self) -> Result<String, ScriptError> {
        let mut out = String::new();
        let _ = writeln!(out, "n = {}", self.input_size());
        for step in self.steps() {
            match step {
                Step::Builtin(t) => {
                    let _ = writeln!(out, "{}", template_line(t));
                }
                Step::Custom(t) => {
                    return Err(err(
                        0,
                        format!("custom template `{}` has no script form", t.template_name()),
                    ));
                }
            }
        }
        Ok(out)
    }

    /// Parses a script back into a sequence.
    ///
    /// # Errors
    ///
    /// Returns [`ScriptError`] with the offending line on malformed input,
    /// unknown template names, invalid parameters, or size-chaining
    /// violations.
    pub fn from_script(text: &str) -> Result<TransformSeq, ScriptError> {
        let mut seq: Option<TransformSeq> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = match raw.find('#') {
                Some(k) => &raw[..k],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('n') {
                let rest = rest.trim();
                if let Some(v) = rest.strip_prefix('=') {
                    if seq.is_some() {
                        return Err(err(line_no, "`n = …` must be the first directive"));
                    }
                    let n: usize = v
                        .trim()
                        .parse()
                        .map_err(|_| err(line_no, "invalid nest size"))?;
                    seq = Some(TransformSeq::new(n));
                    continue;
                }
            }
            let Some(current) = seq.take() else {
                return Err(err(line_no, "script must start with `n = <size>`"));
            };
            let (head, rest) = match line.find(char::is_whitespace) {
                Some(k) => (&line[..k], line[k..].trim()),
                None => (line, ""),
            };
            // Range templates need the *running* nest size.
            let template = match parse_range_template(head, rest, current.output_size(), line_no)? {
                Some(t) => t,
                None => parse_template_line(head, rest, line_no)?,
            };
            seq = Some(
                current
                    .push(template)
                    .map_err(|e| err(line_no, e.to_string()))?,
            );
        }
        seq.ok_or_else(|| err(0, "empty script"))
    }
}

fn template_line(t: &Template) -> String {
    match t {
        Template::Unimodular { matrix } => {
            let rows: Vec<String> = (0..matrix.rows())
                .map(|i| {
                    matrix
                        .row(i)
                        .iter()
                        .map(|c| c.to_string())
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect();
            format!("unimodular m=[{}]", rows.join("; "))
        }
        Template::ReversePermute { rev, perm } => format!(
            "reverse_permute rev=[{}] perm=[{}]",
            bools(rev, "T", "F"),
            nums(perm.as_slice())
        ),
        Template::Parallelize { parflag } => {
            format!("parallelize flags=[{}]", bools(parflag, "1", "0"))
        }
        Template::Block { i, j, bsize, .. } => {
            format!("block i={i} j={j} bsize=[{}]", exprs(bsize))
        }
        Template::Coalesce { i, j, .. } => format!("coalesce i={i} j={j}"),
        Template::Interleave { i, j, isize_, .. } => {
            format!("interleave i={i} j={j} isize=[{}]", exprs(isize_))
        }
    }
}

fn bools(items: &[bool], yes: &str, no: &str) -> String {
    items
        .iter()
        .map(|&b| if b { yes } else { no })
        .collect::<Vec<_>>()
        .join(" ")
}

fn nums(items: &[usize]) -> String {
    items
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

fn exprs(items: &[Expr]) -> String {
    // Semicolon-separated: expressions may contain spaces (`n - 1`) and
    // commas (`min(a, b)`), but never semicolons.
    items
        .iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join("; ")
}

fn parse_template_line(head: &str, rest: &str, line_no: usize) -> Result<Template, ScriptError> {
    let fields = parse_fields(rest, line_no)?;
    let get = |key: &str| -> Result<&str, ScriptError> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| err(line_no, format!("missing `{key}=`")))
    };
    let result = match head {
        "unimodular" => {
            let body = get("m")?;
            let rows: Result<Vec<Vec<i64>>, ScriptError> = body
                .split(';')
                .map(|row| {
                    row.split_whitespace()
                        .map(|c| {
                            c.parse::<i64>()
                                .map_err(|_| err(line_no, format!("bad matrix entry `{c}`")))
                        })
                        .collect()
                })
                .collect();
            let rows = rows?;
            let slices: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
            if slices.is_empty() || slices.iter().any(|r| r.len() != slices.len()) {
                return Err(err(line_no, "matrix must be square"));
            }
            Template::unimodular(IntMatrix::from_rows(&slices))
                .map_err(|e| err(line_no, e.to_string()))?
        }
        "reverse_permute" => {
            let rev = parse_bools(get("rev")?, line_no)?;
            let perm = parse_usizes(get("perm")?, line_no)?;
            Template::reverse_permute(rev, perm).map_err(|e| err(line_no, e.to_string()))?
        }
        "parallelize" => Template::parallelize(parse_bools(get("flags")?, line_no)?),
        other => return Err(err(line_no, format!("unknown template `{other}`"))),
    };
    Ok(result)
}

fn parse_fields(rest: &str, line_no: usize) -> Result<Vec<(String, String)>, ScriptError> {
    // key=value where value is either a bare token or a [..] group.
    let mut out = Vec::new();
    let bytes = rest.as_bytes();
    let mut pos = 0;
    while pos < bytes.len() {
        while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
            pos += 1;
        }
        if pos >= bytes.len() {
            break;
        }
        let key_start = pos;
        while pos < bytes.len() && bytes[pos] != b'=' {
            pos += 1;
        }
        if pos >= bytes.len() {
            return Err(err(line_no, "expected `key=value`"));
        }
        let key = rest[key_start..pos].trim().to_string();
        pos += 1; // '='
        if pos < bytes.len() && bytes[pos] == b'[' {
            let start = pos + 1;
            while pos < bytes.len() && bytes[pos] != b']' {
                pos += 1;
            }
            if pos >= bytes.len() {
                return Err(err(line_no, "unterminated `[`"));
            }
            out.push((key, rest[start..pos].trim().to_string()));
            pos += 1;
        } else {
            let start = pos;
            while pos < bytes.len() && !bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            out.push((key, rest[start..pos].to_string()));
        }
    }
    Ok(out)
}

fn parse_bools(body: &str, line_no: usize) -> Result<Vec<bool>, ScriptError> {
    body.split_whitespace()
        .map(|tok| match tok {
            "T" | "1" | "true" => Ok(true),
            "F" | "0" | "false" => Ok(false),
            other => Err(err(line_no, format!("bad flag `{other}`"))),
        })
        .collect()
}

fn parse_usizes(body: &str, line_no: usize) -> Result<Vec<usize>, ScriptError> {
    body.split_whitespace()
        .map(|tok| {
            tok.parse()
                .map_err(|_| err(line_no, format!("bad index `{tok}`")))
        })
        .collect()
}

fn parse_exprs(body: &str, line_no: usize) -> Result<Vec<Expr>, ScriptError> {
    body.split(';')
        .map(|tok| parse_expr(tok.trim()).map_err(|e| err(line_no, e.to_string())))
        .collect()
}

/// Range templates (block/coalesce/interleave) need the running nest size,
/// which only `from_script` knows; they are parsed through this second
/// entry point.
fn parse_range_template(
    head: &str,
    rest: &str,
    n: usize,
    line_no: usize,
) -> Result<Option<Template>, ScriptError> {
    let fields = parse_fields(rest, line_no)?;
    let get = |key: &str| -> Result<&str, ScriptError> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| err(line_no, format!("missing `{key}=`")))
    };
    let parse_ij = || -> Result<(usize, usize), ScriptError> {
        Ok((
            get("i")?.parse().map_err(|_| err(line_no, "bad i"))?,
            get("j")?.parse().map_err(|_| err(line_no, "bad j"))?,
        ))
    };
    let t = match head {
        "block" => {
            let (i, j) = parse_ij()?;
            let bsize = parse_exprs(get("bsize")?, line_no)?;
            Some(Template::block(n, i, j, bsize).map_err(|e| err(line_no, e.to_string()))?)
        }
        "coalesce" => {
            let (i, j) = parse_ij()?;
            Some(Template::coalesce(n, i, j).map_err(|e| err(line_no, e.to_string()))?)
        }
        "interleave" => {
            let (i, j) = parse_ij()?;
            let isize_ = parse_exprs(get("isize")?, line_no)?;
            Some(Template::interleave(n, i, j, isize_).map_err(|e| err(line_no, e.to_string()))?)
        }
        _ => None,
    };
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TransformSeq {
        let b = |s: &str| Expr::var(s);
        TransformSeq::new(3)
            .reverse_permute(vec![false, true, false], vec![2, 0, 1])
            .unwrap()
            .block(0, 2, vec![b("bj"), b("bk"), b("bi")])
            .unwrap()
            .parallelize(vec![true, false, true, false, false, false])
            .unwrap()
            .coalesce(0, 1)
            .unwrap()
            .interleave(1, 1, vec![Expr::int(4)])
            .unwrap()
            .unimodular(IntMatrix::skew(6, 0, 5, -2))
            .unwrap()
    }

    #[test]
    fn roundtrip_full_kernel_set() {
        let seq = sample();
        let script = seq.to_script().unwrap();
        let back = TransformSeq::from_script(&script).unwrap();
        assert_eq!(back.len(), seq.len());
        assert_eq!(back.input_size(), seq.input_size());
        assert_eq!(back.output_size(), seq.output_size());
        // Step-by-step template equality (Display is a faithful proxy).
        for (a, b) in seq.steps().iter().zip(back.steps()) {
            assert_eq!(a.to_string(), b.to_string());
        }
        // Idempotent serialization.
        assert_eq!(back.to_script().unwrap(), script);
    }

    #[test]
    fn script_text_shape() {
        let script = sample().to_script().unwrap();
        assert!(script.starts_with("n = 3\n"), "{script}");
        assert!(
            script.contains("reverse_permute rev=[F T F] perm=[2 0 1]"),
            "{script}"
        );
        assert!(
            script.contains("block i=0 j=2 bsize=[bj; bk; bi]"),
            "{script}"
        );
        assert!(
            script.contains("parallelize flags=[1 0 1 0 0 0]"),
            "{script}"
        );
        assert!(script.contains("coalesce i=0 j=1"), "{script}");
        assert!(script.contains("interleave i=1 j=1 isize=[4]"), "{script}");
        assert!(script.contains("unimodular m=["), "{script}");
    }

    #[test]
    fn compound_size_expressions_roundtrip() {
        let seq = TransformSeq::new(1)
            .block(
                0,
                0,
                vec![Expr::min2(Expr::var("b"), Expr::var("n") - Expr::int(1))],
            )
            .unwrap();
        let script = seq.to_script().unwrap();
        assert!(script.contains("bsize=[min(b, n - 1)]"), "{script}");
        let back = TransformSeq::from_script(&script).unwrap();
        assert_eq!(back.to_script().unwrap(), script);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let script = "# recipe\nn = 2\n\nparallelize flags=[1 0] # outer\n";
        let seq = TransformSeq::from_script(script).unwrap();
        assert_eq!(seq.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = TransformSeq::from_script("parallelize flags=[1]").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("n = "), "{e}");

        let e = TransformSeq::from_script("n = 2\nfrobnicate x=1").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown template"), "{e}");

        let e = TransformSeq::from_script("n = 2\nparallelize flags=[1 0 0]").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("2"), "{e}");

        let e = TransformSeq::from_script("n = 2\nblock i=1 j=0 bsize=[4]").unwrap_err();
        assert_eq!(e.line, 2);

        let e = TransformSeq::from_script("n = 2\nunimodular m=[2 0; 0 1]").unwrap_err();
        assert!(e.message.contains("unimodular"), "{e}");

        assert!(TransformSeq::from_script("").is_err());
    }

    #[test]
    fn range_templates_use_running_size() {
        // block grows 2 → 4; the following coalesce must see n = 4.
        let script = "n = 2\nblock i=0 j=1 bsize=[4; 4]\ncoalesce i=2 j=3\n";
        let seq = TransformSeq::from_script(script).unwrap();
        assert_eq!(seq.output_size(), 3);
    }

    #[test]
    fn custom_steps_are_unserializable() {
        use crate::sequence::KernelTemplate;
        #[derive(Debug)]
        struct Nop;
        impl KernelTemplate for Nop {
            fn template_name(&self) -> String {
                "Nop".into()
            }
            fn input_size(&self) -> usize {
                1
            }
            fn output_size(&self) -> usize {
                1
            }
            fn map_dep_vector(
                &self,
                d: &irlt_dependence::DepVector,
            ) -> Vec<irlt_dependence::DepVector> {
                vec![d.clone()]
            }
            fn check_preconditions(
                &self,
                _: &irlt_ir::LoopNest,
            ) -> Result<(), crate::PrecondError> {
                Ok(())
            }
            fn apply_to(
                &self,
                nest: &irlt_ir::LoopNest,
            ) -> Result<irlt_ir::LoopNest, crate::ApplyError> {
                Ok(nest.clone())
            }
        }
        let seq = TransformSeq::new(1)
            .push_custom(std::sync::Arc::new(Nop))
            .unwrap();
        let e = seq.to_script().unwrap_err();
        assert!(e.message.contains("Nop"), "{e}");
    }
}
