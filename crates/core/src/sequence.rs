//! The sequence representation of iteration-reordering transformations
//! (§2) and the uniform legality test (§§3–4).
//!
//! An iteration-reordering transformation is a sequence
//! `T = ⟨t₁, …, t_k⟩` of template instantiations. Composition of
//! transformations is **sequence concatenation** — the system is closed
//! under composition by construction — with an optional peephole *fusion*
//! pass that merges adjacent compatible instantiations (two `Unimodular`s
//! multiply into one, two `ReversePermute`s compose, two `Parallelize`s
//! union).
//!
//! The uniform legality test [`TransformSeq::is_legal`] has the paper's two
//! parts: (a) map the dependence set through the whole sequence and reject
//! iff the *final* set admits a lexicographically negative tuple —
//! intermediate stages need not be legal; (b) check each instantiation's
//! loop-bounds preconditions against the (intermediate) nest it applies to.

use crate::codegen::ApplyError;
use crate::precond::PrecondError;
use crate::template::{Template, TemplateError};
use irlt_dependence::{DepSet, DepVector};
use irlt_ir::{Expr, LoopNest, Stmt};
use irlt_unimodular::IntMatrix;
use std::fmt;
use std::sync::Arc;

/// An extensible kernel template: implement this to add a new
/// transformation to the framework ("ease of addition of new
/// transformations by specifying new rules").
///
/// The three rule families of §2 map onto the three required methods:
/// dependence-vector mapping, precondition checking (the loop-bounds
/// rules' guard), and code generation (bounds mapping + initialization
/// statements).
pub trait KernelTemplate: fmt::Debug + Send + Sync {
    /// Template name for diagnostics.
    fn template_name(&self) -> String;
    /// Input nest size.
    fn input_size(&self) -> usize;
    /// Output nest size.
    fn output_size(&self) -> usize;
    /// The dependence-vector mapping rule.
    fn map_dep_vector(&self, d: &DepVector) -> Vec<DepVector>;
    /// The loop-bounds precondition rule.
    ///
    /// # Errors
    ///
    /// Returns the first violated precondition.
    fn check_preconditions(&self, nest: &LoopNest) -> Result<(), PrecondError>;
    /// The code-generation rule (bounds mapping + initializations).
    ///
    /// # Errors
    ///
    /// Returns [`ApplyError`] when the nest cannot be transformed.
    fn apply_to(&self, nest: &LoopNest) -> Result<LoopNest, ApplyError>;
}

impl KernelTemplate for Template {
    fn template_name(&self) -> String {
        self.name().to_string()
    }

    fn input_size(&self) -> usize {
        Template::input_size(self)
    }

    fn output_size(&self) -> usize {
        Template::output_size(self)
    }

    fn map_dep_vector(&self, d: &DepVector) -> Vec<DepVector> {
        Template::map_dep_vector(self, d)
    }

    fn check_preconditions(&self, nest: &LoopNest) -> Result<(), PrecondError> {
        Template::check_preconditions(self, nest)
    }

    fn apply_to(&self, nest: &LoopNest) -> Result<LoopNest, ApplyError> {
        Template::apply_to(self, nest)
    }
}

/// One element of a sequence: a built-in kernel template or a user
/// extension.
#[derive(Clone, Debug)]
pub enum Step {
    /// One of the six Table 1 templates.
    Builtin(Template),
    /// A user-defined template.
    Custom(Arc<dyn KernelTemplate>),
}

impl Step {
    /// Diagnostic name.
    pub fn name(&self) -> String {
        match self {
            Step::Builtin(t) => t.name().to_string(),
            Step::Custom(t) => t.template_name(),
        }
    }

    /// Input nest size.
    pub fn input_size(&self) -> usize {
        match self {
            Step::Builtin(t) => t.input_size(),
            Step::Custom(t) => t.input_size(),
        }
    }

    /// Output nest size.
    pub fn output_size(&self) -> usize {
        match self {
            Step::Builtin(t) => t.output_size(),
            Step::Custom(t) => t.output_size(),
        }
    }

    /// Dependence mapping for a whole set.
    ///
    /// # Panics
    ///
    /// Panics if the set arity differs from the step's input size.
    pub fn map_dep_set(&self, deps: &DepSet) -> DepSet {
        match self {
            Step::Builtin(t) => t.map_dep_set(deps),
            Step::Custom(t) => deps.map_vectors(|v| t.map_dep_vector(v)),
        }
    }

    /// [`Step::map_dep_set`] with telemetry: records the per-vector image
    /// fan-out histogram under `depmap/fanout/<template name>` plus the
    /// `depmap/*` mapping counters. Identical to `map_dep_set` when the
    /// handle is disabled.
    ///
    /// # Panics
    ///
    /// Panics if the set arity differs from the step's input size.
    pub fn map_dep_set_observed(&self, deps: &DepSet, tel: &irlt_obs::Telemetry) -> DepSet {
        deps.map_vectors_observed(|v| self.map_dep_vector(v), tel, &self.name())
    }

    /// Dependence mapping for a single vector (the per-step rule).
    pub fn map_dep_vector(&self, d: &DepVector) -> Vec<DepVector> {
        match self {
            Step::Builtin(t) => t.map_dep_vector(d),
            Step::Custom(t) => t.map_dep_vector(d),
        }
    }

    /// Precondition check.
    ///
    /// # Errors
    ///
    /// Returns the first violated precondition.
    pub fn check_preconditions(&self, nest: &LoopNest) -> Result<(), PrecondError> {
        match self {
            Step::Builtin(t) => t.check_preconditions(nest),
            Step::Custom(t) => t.check_preconditions(nest),
        }
    }

    /// Code generation.
    ///
    /// # Errors
    ///
    /// Returns [`ApplyError`] when the nest cannot be transformed.
    pub fn apply_to(&self, nest: &LoopNest) -> Result<LoopNest, ApplyError> {
        match self {
            Step::Builtin(t) => t.apply_to(nest),
            Step::Custom(t) => t.apply_to(nest),
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Builtin(t) => write!(f, "{t}"),
            Step::Custom(t) => write!(f, "{}(custom)", t.template_name()),
        }
    }
}

/// A sequence-structure chaining error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SequenceError {
    /// A step's input size does not match the previous step's output size.
    SizeMismatch {
        /// 0-based position of the offending step.
        step: usize,
        /// Output size of the previous step (or the sequence input size).
        expected: usize,
        /// Input size of the offending step.
        found: usize,
    },
    /// Invalid template parameters.
    Template(TemplateError),
}

impl fmt::Display for SequenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SequenceError::SizeMismatch {
                step,
                expected,
                found,
            } => write!(
                f,
                "step {step} expects a {found}-deep nest but the running nest size is {expected}"
            ),
            SequenceError::Template(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SequenceError {}

impl From<TemplateError> for SequenceError {
    fn from(e: TemplateError) -> Self {
        SequenceError::Template(e)
    }
}

/// A transformation: a validated sequence of template instantiations.
///
/// # Examples
///
/// The Appendix A matrix-multiply transformation as a five-step sequence:
///
/// ```
/// use irlt_core::TransformSeq;
/// use irlt_ir::Expr;
///
/// let b = |s: &str| Expr::var(s);
/// let t = TransformSeq::new(3)
///     .reverse_permute(vec![false; 3], vec![2, 0, 1])?   // (i,j,k) → (j,k,i)
///     .block(0, 2, vec![b("bj"), b("bk"), b("bi")])?     // 3 → 6 loops
///     .parallelize(vec![true, false, true, false, false, false])?
///     .reverse_permute(vec![false; 6], vec![0, 2, 1, 3, 4, 5])?
///     .coalesce(0, 1)?;                                  // 6 → 5 loops
/// assert_eq!(t.output_size(), 5);
/// assert_eq!(t.len(), 5);
/// # Ok::<(), irlt_core::SequenceError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct TransformSeq {
    input_size: usize,
    steps: Vec<Step>,
}

impl TransformSeq {
    /// The empty (identity) transformation on nests of depth `n`.
    pub fn new(n: usize) -> TransformSeq {
        TransformSeq {
            input_size: n,
            steps: Vec::new(),
        }
    }

    /// Input nest size.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Output nest size (after the last step).
    pub fn output_size(&self) -> usize {
        self.steps.last().map_or(self.input_size, Step::output_size)
    }

    /// Number of template instantiations.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for the identity sequence.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Appends a template instantiation, checking size chaining.
    ///
    /// # Errors
    ///
    /// Returns [`SequenceError::SizeMismatch`] if the template's input size
    /// differs from the running output size.
    pub fn push(mut self, template: Template) -> Result<TransformSeq, SequenceError> {
        self.push_step(Step::Builtin(template))?;
        Ok(self)
    }

    /// Appends a user-defined template.
    ///
    /// # Errors
    ///
    /// Returns [`SequenceError::SizeMismatch`] on size mismatch.
    pub fn push_custom(
        mut self,
        template: Arc<dyn KernelTemplate>,
    ) -> Result<TransformSeq, SequenceError> {
        self.push_step(Step::Custom(template))?;
        Ok(self)
    }

    fn push_step(&mut self, step: Step) -> Result<(), SequenceError> {
        let expected = self.output_size();
        if step.input_size() != expected {
            return Err(SequenceError::SizeMismatch {
                step: self.steps.len(),
                expected,
                found: step.input_size(),
            });
        }
        self.steps.push(step);
        Ok(())
    }

    /// Appends `Unimodular(n, M)`.
    ///
    /// # Errors
    ///
    /// Returns [`SequenceError`] on an invalid matrix or size mismatch.
    pub fn unimodular(self, matrix: IntMatrix) -> Result<TransformSeq, SequenceError> {
        self.push(Template::unimodular(matrix)?)
    }

    /// Appends `ReversePermute(n, rev, perm)`.
    ///
    /// # Errors
    ///
    /// Returns [`SequenceError`] on invalid parameters or size mismatch.
    pub fn reverse_permute(
        self,
        rev: Vec<bool>,
        perm: Vec<usize>,
    ) -> Result<TransformSeq, SequenceError> {
        self.push(Template::reverse_permute(rev, perm)?)
    }

    /// Appends `Parallelize(n, parflag)`.
    ///
    /// # Errors
    ///
    /// Returns [`SequenceError::SizeMismatch`] on size mismatch.
    pub fn parallelize(self, parflag: Vec<bool>) -> Result<TransformSeq, SequenceError> {
        self.push(Template::parallelize(parflag))
    }

    /// Appends `Block(n, i, j, bsize)` over the current nest size.
    ///
    /// # Errors
    ///
    /// Returns [`SequenceError`] on invalid parameters.
    pub fn block(
        self,
        i: usize,
        j: usize,
        bsize: Vec<Expr>,
    ) -> Result<TransformSeq, SequenceError> {
        let n = self.output_size();
        self.push(Template::block(n, i, j, bsize)?)
    }

    /// Appends `Coalesce(n, i, j)` over the current nest size.
    ///
    /// # Errors
    ///
    /// Returns [`SequenceError`] on invalid parameters.
    pub fn coalesce(self, i: usize, j: usize) -> Result<TransformSeq, SequenceError> {
        let n = self.output_size();
        self.push(Template::coalesce(n, i, j)?)
    }

    /// Appends `Interleave(n, i, j, isize)` over the current nest size.
    ///
    /// # Errors
    ///
    /// Returns [`SequenceError`] on invalid parameters.
    pub fn interleave(
        self,
        i: usize,
        j: usize,
        isize_: Vec<Expr>,
    ) -> Result<TransformSeq, SequenceError> {
        let n = self.output_size();
        self.push(Template::interleave(n, i, j, isize_)?)
    }

    /// Composition by sequence concatenation (§2: `U ∘ T` is
    /// `⟨t₁ … t_k, u₁ … u_l⟩`).
    ///
    /// # Errors
    ///
    /// Returns [`SequenceError::SizeMismatch`] if `other`'s input size
    /// differs from `self`'s output size.
    pub fn then(mut self, other: TransformSeq) -> Result<TransformSeq, SequenceError> {
        if other.input_size != self.output_size() {
            return Err(SequenceError::SizeMismatch {
                step: self.steps.len(),
                expected: self.output_size(),
                found: other.input_size,
            });
        }
        self.steps.extend(other.steps);
        Ok(self)
    }

    /// Peephole fusion ("for the sake of efficiency, the concatenated
    /// sequence can be reduced in length"): adjacent `Unimodular`s multiply
    /// into one, adjacent `ReversePermute`s compose, adjacent
    /// `Parallelize`s union. Iterates to a fixed point. The fused sequence
    /// denotes the same transformation.
    #[must_use]
    pub fn fuse(&self) -> TransformSeq {
        let mut steps: Vec<Step> = Vec::with_capacity(self.steps.len());
        for step in &self.steps {
            let fused = match (steps.last(), &step) {
                (Some(Step::Builtin(prev)), Step::Builtin(next)) => fuse_pair(prev, next),
                _ => None,
            };
            match fused {
                Some(t) => {
                    steps.pop();
                    steps.push(Step::Builtin(t));
                }
                None => steps.push(step.clone()),
            }
        }
        TransformSeq {
            input_size: self.input_size,
            steps,
        }
    }

    /// Maps a dependence set through the whole sequence
    /// (`D_i = t_i(D_{i−1})`).
    ///
    /// # Panics
    ///
    /// Panics if `deps`' arity differs from the sequence input size.
    pub fn map_deps(&self, deps: &DepSet) -> DepSet {
        let mut d = deps.clone();
        for step in &self.steps {
            d = step.map_dep_set(&d);
        }
        d
    }

    /// The paper's uniform legality test `IsLegal(T, N)`.
    ///
    /// Part (a): the dependence set mapped through the *whole* sequence
    /// must admit no lexicographically negative tuple (individual stages
    /// need not be legal). Part (b): each instantiation's loop-bounds
    /// preconditions must hold on the intermediate nest it applies to.
    ///
    /// # Panics
    ///
    /// Panics if `deps`' arity differs from the nest depth.
    pub fn is_legal(&self, nest: &LoopNest, deps: &DepSet) -> LegalityReport {
        // Part (b): walk a body-less shape through the sequence, checking
        // preconditions — this is the cheap "matrix representation" pass:
        // the loop body is never copied or rewritten.
        let mut shape = LoopNest::with_inits(nest.loops().to_vec(), Vec::new(), Vec::new());
        for (k, step) in self.steps.iter().enumerate() {
            if let Err(e) = step.check_preconditions(&shape) {
                return LegalityReport::Illegal(IllegalReason::Precondition { step: k, error: e });
            }
            match step.apply_to(&shape) {
                Ok(next) => {
                    shape = LoopNest::with_inits(next.loops().to_vec(), Vec::new(), Vec::new());
                }
                Err(e) => {
                    return LegalityReport::Illegal(IllegalReason::CodeGen { step: k, error: e })
                }
            }
        }
        // Part (a): final dependence set.
        let mapped = self.map_deps(deps);
        if mapped.is_legal() {
            LegalityReport::Legal
        } else {
            let witnesses = mapped
                .lex_negative_witnesses()
                .into_iter()
                .cloned()
                .collect();
            LegalityReport::Illegal(IllegalReason::Dependences { witnesses })
        }
    }

    /// Generates code: applies every step's bounds mapping and collects the
    /// initialization statements in `INIT_k, …, INIT_1` order.
    ///
    /// # Errors
    ///
    /// Returns the first failing step and its error.
    pub fn apply(&self, nest: &LoopNest) -> Result<LoopNest, SeqApplyError> {
        let mut current = nest.clone();
        for (k, step) in self.steps.iter().enumerate() {
            current = step
                .apply_to(&current)
                .map_err(|error| SeqApplyError { step: k, error })?;
        }
        Ok(current)
    }

    /// Applies the sequence and also returns the mapped dependence set —
    /// "this avoids recomputing the dependence vectors for the transformed
    /// loop nest, which is in general an expensive operation."
    ///
    /// # Errors
    ///
    /// Returns the first failing step and its error.
    pub fn apply_with_deps(
        &self,
        nest: &LoopNest,
        deps: &DepSet,
    ) -> Result<(LoopNest, DepSet), SeqApplyError> {
        Ok((self.apply(nest)?, self.map_deps(deps)))
    }
}

impl fmt::Display for TransformSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (k, s) in self.steps.iter().enumerate() {
            if k > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "⟩")
    }
}

/// Fuses two adjacent built-in instantiations when an equivalent single
/// instantiation exists.
fn fuse_pair(prev: &Template, next: &Template) -> Option<Template> {
    match (prev, next) {
        (Template::Unimodular { matrix: m1 }, Template::Unimodular { matrix: m2 }) => {
            Some(Template::Unimodular { matrix: m2.mul(m1) })
        }
        (
            Template::ReversePermute { rev: r1, perm: p1 },
            Template::ReversePermute { rev: r2, perm: p2 },
        ) => {
            // Loop k: reversed by r1[k], lands at p1[k]; then reversed by
            // r2[p1[k]], lands at p2[p1[k]].
            let rev = (0..r1.len())
                .map(|k| r1[k] ^ r2[p1.new_position(k)])
                .collect();
            Some(Template::ReversePermute {
                rev,
                perm: p1.then(p2),
            })
        }
        (Template::Parallelize { parflag: f1 }, Template::Parallelize { parflag: f2 }) => {
            Some(Template::Parallelize {
                parflag: f1.iter().zip(f2).map(|(&a, &b)| a || b).collect(),
            })
        }
        _ => None,
    }
}

/// Outcome of [`TransformSeq::is_legal`].
#[derive(Clone, Debug, PartialEq)]
pub enum LegalityReport {
    /// Both parts of the test pass.
    Legal,
    /// The transformation is illegal for this nest.
    Illegal(IllegalReason),
}

impl LegalityReport {
    /// True if the transformation may be applied.
    pub fn is_legal(&self) -> bool {
        matches!(self, LegalityReport::Legal)
    }
}

impl fmt::Display for LegalityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LegalityReport::Legal => f.write_str("legal"),
            LegalityReport::Illegal(r) => write!(f, "illegal: {r}"),
        }
    }
}

/// Why a transformation was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum IllegalReason {
    /// The final mapped dependence set admits a lexicographically negative
    /// tuple.
    Dependences {
        /// The offending mapped vectors.
        witnesses: Vec<DepVector>,
    },
    /// A step's loop-bounds precondition failed.
    Precondition {
        /// 0-based step index.
        step: usize,
        /// The violation.
        error: PrecondError,
    },
    /// A step's code generation failed on the intermediate nest.
    CodeGen {
        /// 0-based step index.
        step: usize,
        /// The failure.
        error: ApplyError,
    },
}

impl fmt::Display for IllegalReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IllegalReason::Dependences { witnesses } => {
                write!(
                    f,
                    "transformed dependence set admits a lexicographically negative tuple: "
                )?;
                for (k, w) in witnesses.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{w}")?;
                }
                Ok(())
            }
            IllegalReason::Precondition { step, error } => {
                write!(f, "step {step}: {error}")
            }
            IllegalReason::CodeGen { step, error } => write!(f, "step {step}: {error}"),
        }
    }
}

/// A code-generation failure inside a sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct SeqApplyError {
    /// 0-based step index.
    pub step: usize,
    /// The failure.
    pub error: ApplyError,
}

impl fmt::Display for SeqApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "step {}: {}", self.step, self.error)
    }
}

impl std::error::Error for SeqApplyError {}

/// Convenience: checks whether a statement list is a pure prefix of scalar
/// initializations (used in tests and by the interpreter's decoding).
pub fn init_prefix(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .take_while(|s| matches!(s.target(), Some(irlt_ir::Target::Scalar(_))))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    use irlt_ir::parse_nest;

    fn stencil() -> (LoopNest, DepSet) {
        let nest = parse_nest(
            "do i = 2, n - 1\n do j = 2, n - 1\n  a(i, j) = a(i - 1, j) + a(i, j - 1)\n enddo\nenddo",
        )
        .unwrap();
        let deps = DepSet::from_distances(&[&[1, 0], &[0, 1]]);
        (nest, deps)
    }

    #[test]
    fn size_chaining_enforced() {
        let err = TransformSeq::new(2)
            .parallelize(vec![true, false, false])
            .unwrap_err();
        assert_eq!(
            err,
            SequenceError::SizeMismatch {
                step: 0,
                expected: 2,
                found: 3
            }
        );
        // Block grows the size; the next step must match.
        let t = TransformSeq::new(2)
            .block(0, 1, vec![Expr::int(4), Expr::int(4)])
            .unwrap();
        assert_eq!(t.output_size(), 4);
        assert!(t.clone().parallelize(vec![true; 4]).is_ok());
        assert!(t.parallelize(vec![true; 2]).is_err());
    }

    #[test]
    fn composition_is_concatenation() {
        let a = TransformSeq::new(2).parallelize(vec![true, false]).unwrap();
        let b = TransformSeq::new(2)
            .reverse_permute(vec![false, false], vec![1, 0])
            .unwrap();
        let ab = a.then(b).unwrap();
        assert_eq!(ab.len(), 2);
        assert_eq!(ab.output_size(), 2);
        let c = TransformSeq::new(3);
        assert!(ab.then(c).is_err());
    }

    #[test]
    fn figure1_sequence_skew_then_interchange() {
        // Fig. 1: skew j by i (Unimodular), then interchange (either
        // template). Dependences (1,0) and (0,1) stay legal.
        let (nest, deps) = stencil();
        let t = TransformSeq::new(2)
            .unimodular(IntMatrix::skew(2, 0, 1, 1))
            .unwrap()
            .unimodular(IntMatrix::interchange(2, 0, 1))
            .unwrap();
        assert!(t.is_legal(&nest, &deps).is_legal());
        let mapped = t.map_deps(&deps);
        assert!(mapped.vectors().contains(&DepVector::distances(&[1, 1])));
        assert!(mapped.vectors().contains(&DepVector::distances(&[1, 0])));
        let out = t.apply(&nest).unwrap();
        assert_eq!(out.depth(), 2);
    }

    #[test]
    fn intermediate_illegality_is_allowed() {
        // §3.2: "each individual transformation stage need not be legal,
        // only that the final result be legal." Interchange alone is
        // illegal on (1,−1); interchanging twice is the identity and legal.
        let nest =
            parse_nest("do i = 2, n\n do j = 1, n - 1\n  a(i, j) = a(i - 1, j + 1)\n enddo\nenddo")
                .unwrap();
        let deps = DepSet::from_distances(&[&[1, -1]]);
        let swap_once = TransformSeq::new(2)
            .reverse_permute(vec![false, false], vec![1, 0])
            .unwrap();
        assert!(!swap_once.is_legal(&nest, &deps).is_legal());
        let swap_twice = swap_once
            .then(
                TransformSeq::new(2)
                    .reverse_permute(vec![false, false], vec![1, 0])
                    .unwrap(),
            )
            .unwrap();
        assert!(swap_twice.is_legal(&nest, &deps).is_legal());
    }

    #[test]
    fn dependence_rejection_reports_witnesses() {
        let nest =
            parse_nest("do i = 2, n\n do j = 1, n - 1\n  a(i, j) = a(i - 1, j + 1)\n enddo\nenddo")
                .unwrap();
        let deps = DepSet::from_distances(&[&[1, -1]]);
        let t = TransformSeq::new(2)
            .reverse_permute(vec![false, false], vec![1, 0])
            .unwrap();
        match t.is_legal(&nest, &deps) {
            LegalityReport::Illegal(IllegalReason::Dependences { witnesses }) => {
                assert_eq!(witnesses, vec![DepVector::distances(&[-1, 1])]);
            }
            other => panic!("expected dependence rejection, got {other:?}"),
        }
    }

    #[test]
    fn precondition_rejection_reports_step() {
        // Interchanging a triangular nest with ReversePermute violates its
        // invariance precondition at step 1 (after a no-op parallelize).
        let nest = parse_nest("do i = 1, n\n do j = 1, i\n  a(i, j) = 0\n enddo\nenddo").unwrap();
        let deps = DepSet::new();
        let t = TransformSeq::new(2)
            .parallelize(vec![false, false])
            .unwrap()
            .reverse_permute(vec![false, false], vec![1, 0])
            .unwrap();
        match t.is_legal(&nest, &deps) {
            LegalityReport::Illegal(IllegalReason::Precondition { step, .. }) => {
                assert_eq!(step, 1);
            }
            other => panic!("expected precondition rejection, got {other:?}"),
        }
    }

    #[test]
    fn fuse_unimodular_pairs() {
        let t = TransformSeq::new(2)
            .unimodular(IntMatrix::skew(2, 0, 1, 1))
            .unwrap()
            .unimodular(IntMatrix::interchange(2, 0, 1))
            .unwrap();
        let fused = t.fuse();
        assert_eq!(fused.len(), 1);
        match &fused.steps()[0] {
            Step::Builtin(Template::Unimodular { matrix }) => {
                assert_eq!(matrix, &IntMatrix::from_rows(&[&[1, 1], &[1, 0]]));
            }
            other => panic!("expected fused Unimodular, got {other:?}"),
        }
        // Same dependence mapping.
        let d = DepSet::from_distances(&[&[1, 0], &[0, 1]]);
        assert_eq!(t.map_deps(&d), fused.map_deps(&d));
    }

    #[test]
    fn fuse_reverse_permute_pairs() {
        // Reverse j + interchange, then interchange back: net effect is
        // reverse j in place.
        let t = TransformSeq::new(2)
            .reverse_permute(vec![false, true], vec![1, 0])
            .unwrap()
            .reverse_permute(vec![false, false], vec![1, 0])
            .unwrap();
        let fused = t.fuse();
        assert_eq!(fused.len(), 1);
        match &fused.steps()[0] {
            Step::Builtin(Template::ReversePermute { rev, perm }) => {
                assert_eq!(rev, &vec![false, true]);
                assert!(perm.is_identity());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fuse_double_reversal_cancels() {
        let t = TransformSeq::new(1)
            .reverse_permute(vec![true], vec![0])
            .unwrap()
            .reverse_permute(vec![true], vec![0])
            .unwrap();
        let fused = t.fuse();
        match &fused.steps()[0] {
            Step::Builtin(Template::ReversePermute { rev, perm }) => {
                assert_eq!(rev, &vec![false]);
                assert!(perm.is_identity());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fuse_parallelize_unions() {
        let t = TransformSeq::new(2)
            .parallelize(vec![true, false])
            .unwrap()
            .parallelize(vec![false, true])
            .unwrap();
        let fused = t.fuse();
        assert_eq!(fused.len(), 1);
        match &fused.steps()[0] {
            Step::Builtin(Template::Parallelize { parflag }) => {
                assert_eq!(parflag, &vec![true, true]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fuse_stops_at_incompatible_neighbors() {
        let t = TransformSeq::new(2)
            .unimodular(IntMatrix::identity(2))
            .unwrap()
            .parallelize(vec![true, false])
            .unwrap()
            .unimodular(IntMatrix::identity(2))
            .unwrap();
        assert_eq!(t.fuse().len(), 3);
    }

    #[test]
    fn fusion_preserves_codegen_semantics() {
        let (nest, _) = stencil();
        let t = TransformSeq::new(2)
            .reverse_permute(vec![true, false], vec![0, 1])
            .unwrap()
            .reverse_permute(vec![true, false], vec![0, 1])
            .unwrap();
        let fused = t.fuse();
        // Double reversal fused = identity ReversePermute: bounds exactly
        // as the original.
        let out = fused.apply(&nest).unwrap();
        assert_eq!(out.level(0).lower, nest.level(0).lower);
        assert_eq!(out.level(0).upper, nest.level(0).upper);
    }

    #[test]
    fn apply_reports_failing_step() {
        let nest = parse_nest("do i = 1, n\n do j = 1, i\n  a(i, j) = 0\n enddo\nenddo").unwrap();
        let t = TransformSeq::new(2)
            .parallelize(vec![false; 2])
            .unwrap()
            .reverse_permute(vec![false, false], vec![1, 0])
            .unwrap();
        let err = t.apply(&nest).unwrap_err();
        assert_eq!(err.step, 1);
        assert!(matches!(err.error, ApplyError::Precond(_)));
    }

    #[test]
    fn empty_sequence_is_identity() {
        let (nest, deps) = stencil();
        let t = TransformSeq::new(2);
        assert!(t.is_legal(&nest, &deps).is_legal());
        assert_eq!(t.apply(&nest).unwrap(), nest);
        assert_eq!(t.map_deps(&deps), deps);
        assert!(t.is_empty());
    }

    #[test]
    fn display_renders_sequence() {
        let t = TransformSeq::new(2)
            .parallelize(vec![true, false])
            .unwrap()
            .coalesce(0, 1)
            .unwrap();
        let s = t.to_string();
        assert!(s.contains("Parallelize") && s.contains("Coalesce"), "{s}");
    }

    #[test]
    fn custom_template_participates() {
        // A trivial user extension: "identity" template.
        #[derive(Debug)]
        struct Nop(usize);
        impl KernelTemplate for Nop {
            fn template_name(&self) -> String {
                "Nop".into()
            }
            fn input_size(&self) -> usize {
                self.0
            }
            fn output_size(&self) -> usize {
                self.0
            }
            fn map_dep_vector(&self, d: &DepVector) -> Vec<DepVector> {
                vec![d.clone()]
            }
            fn check_preconditions(&self, _nest: &LoopNest) -> Result<(), PrecondError> {
                Ok(())
            }
            fn apply_to(&self, nest: &LoopNest) -> Result<LoopNest, ApplyError> {
                Ok(nest.clone())
            }
        }
        let (nest, _) = stencil();
        // Only the i-carried dependence: the inner loop is parallelizable.
        let deps = DepSet::from_distances(&[&[1, 0]]);
        let t = TransformSeq::new(2)
            .push_custom(Arc::new(Nop(2)))
            .unwrap()
            .parallelize(vec![false, true])
            .unwrap();
        assert!(t.is_legal(&nest, &deps).is_legal());
        let out = t.apply(&nest).unwrap();
        assert!(out.level(1).kind.is_parallel());
        assert!(t.to_string().contains("Nop(custom)"));
    }

    #[test]
    fn init_prefix_counts_scalars() {
        let stmts = vec![
            Stmt::scalar("i", Expr::int(0)),
            Stmt::scalar("j", Expr::int(0)),
            Stmt::array("a", vec![Expr::var("i")], Expr::int(1)),
        ];
        assert_eq!(init_prefix(&stmts), 2);
    }

    #[test]
    fn block_then_parallelize_dependence_flow() {
        // Matmul-like deps (0,0,1): block all three then parallelize the
        // two block loops that do NOT carry the k dependence — legal.
        let deps = DepSet::from_distances(&[&[0, 0, 1]]);
        let t = TransformSeq::new(3)
            .block(0, 2, vec![Expr::var("b"); 3])
            .unwrap()
            .parallelize(vec![true, true, false, false, false, false])
            .unwrap();
        let mapped = t.map_deps(&deps);
        assert!(mapped.is_legal(), "{mapped}");
        // Parallelizing the third block loop (which carries k) is illegal.
        let t = TransformSeq::new(3)
            .block(0, 2, vec![Expr::var("b"); 3])
            .unwrap()
            .parallelize(vec![false, false, true, false, false, false])
            .unwrap();
        assert!(!t.map_deps(&deps).is_legal());
    }
}
