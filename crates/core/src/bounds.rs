//! The matrix representation of loop bound expressions (§4.3, Fig. 5).
//!
//! "To efficiently transform the loop bound expressions through each
//! template instantiation in a transformation sequence, we use a
//! matrix-based representation … three matrices, `LB`, `UB`, `STEP` …
//! shape `(1…n) × (0…n)`, entry `(i, j)` only defined when `i > j`."
//!
//! * The `(i, 0)` entry holds the loop-invariant part — "an arbitrary
//!   expression that is only evaluated at run-time";
//! * the `(i, j)` entry (for `j ≥ 1`) holds the constant integer
//!   coefficient of index variable `j`, when `type(i, j) ⊑ linear`;
//! * if `type(i, j) = nonlinear`, the `(i, j)` entry is zero and the terms
//!   involving variable `j` are folded into the `(i, 0)` entry;
//! * `max`/`min` bounds store *lists* of values, one per inequality.
//!
//! This structure carries exactly the information the legality test's type
//! predicates need, without ever touching the loop body.

use irlt_ir::{classify_bound, BoundSide, Expr, ExprType, LoopNest, Symbol};
use std::collections::BTreeSet;
use std::fmt;

/// One inequality's worth of a bound row: constant coefficients over the
/// index variables plus the invariant/nonlinear remainder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatrixEntry {
    /// Coefficient of each index variable (position = loop level). Zero for
    /// variables the term does not involve linearly.
    pub coeffs: Vec<i64>,
    /// The `(i, 0)` slot: invariant terms plus any terms folded here
    /// because they are nonlinear in some index variable.
    pub invariant: Expr,
    /// Index variables that occur *nonlinearly* (their coefficient reads 0
    /// and their terms live in `invariant`).
    pub nonlinear_in: BTreeSet<Symbol>,
}

impl MatrixEntry {
    fn from_expr(expr: &Expr, indices: &[Symbol]) -> MatrixEntry {
        // Decompose into additive terms (constants fold; atoms keep their
        // coefficients) mirroring Expr::simplify's normalization.
        let simplified = expr.simplify();
        let mut coeffs = vec![0i64; indices.len()];
        let mut invariant = Expr::int(0);
        let mut nonlinear_in = BTreeSet::new();
        let mut pending: Vec<(Expr, i64)> = vec![(simplified, 1)];
        while let Some((e, mult)) = pending.pop() {
            match e {
                Expr::Add(a, b) => {
                    pending.push((*a, mult));
                    pending.push((*b, mult));
                }
                Expr::Sub(a, b) => {
                    pending.push((*a, mult));
                    pending.push((*b, -mult));
                }
                Expr::Neg(a) => pending.push((*a, -mult)),
                Expr::Mul(a, b) if a.as_const().is_some() => {
                    pending.push((*b, mult * a.as_const().expect("const")));
                }
                Expr::Mul(a, b) if b.as_const().is_some() => {
                    pending.push((*a, mult * b.as_const().expect("const")));
                }
                Expr::Var(ref v) if indices.contains(v) => {
                    let pos = indices.iter().position(|x| x == v).expect("contained");
                    coeffs[pos] += mult;
                }
                atom => {
                    for v in atom.free_vars() {
                        if indices.contains(&v) {
                            nonlinear_in.insert(v);
                        }
                    }
                    invariant = Expr::add(invariant, Expr::mul(Expr::int(mult), atom));
                }
            }
        }
        MatrixEntry {
            coeffs,
            invariant: invariant.simplify(),
            nonlinear_in,
        }
    }
}

/// One row of a bound matrix: a list of [`MatrixEntry`] inequalities
/// (singleton unless the bound is a splittable `max`/`min`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundRow {
    /// The inequalities.
    pub terms: Vec<MatrixEntry>,
    /// The original expression (kept for exact type queries and
    /// re-rendering).
    pub expr: Expr,
}

/// The `LB`/`UB`/`STEP` matrices of one loop nest.
///
/// # Examples
///
/// ```
/// use irlt_core::BoundsMatrices;
/// use irlt_ir::{parse_nest, BoundSide, ExprType, Symbol};
///
/// let nest = parse_nest(
///     "do i = max(n, 3), 100, 2\n  do j = 1, min(2*i, 512)\n    a(i, j) = 0\n  enddo\nenddo",
/// )?;
/// let m = BoundsMatrices::from_nest(&nest);
/// // Fig. 5: type(u2, i) = linear.
/// assert_eq!(m.entry_type(BoundSide::Upper, 1, &Symbol::new("i")), ExprType::Linear);
/// // The (2, i) coefficient list for UB is <2, 0> (one per inequality).
/// let coeffs: Vec<i64> = m.upper(1).terms.iter().map(|t| t.coeffs[0]).collect();
/// assert_eq!(coeffs, [2, 0]);
/// # Ok::<(), irlt_ir::ParseError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundsMatrices {
    names: Vec<Symbol>,
    steps_positive: Vec<bool>,
    lb: Vec<BoundRow>,
    ub: Vec<BoundRow>,
    step: Vec<BoundRow>,
}

impl BoundsMatrices {
    /// Builds the matrices for a nest.
    pub fn from_nest(nest: &LoopNest) -> BoundsMatrices {
        let names = nest.index_vars();
        let steps_positive: Vec<bool> = nest
            .loops()
            .iter()
            .map(|l| l.step.as_const().is_none_or(|s| s > 0))
            .collect();
        let mut lb = Vec::with_capacity(nest.depth());
        let mut ub = Vec::with_capacity(nest.depth());
        let mut step = Vec::with_capacity(nest.depth());
        for (k, l) in nest.loops().iter().enumerate() {
            lb.push(build_row(
                &l.lower,
                BoundSide::Lower,
                steps_positive[k],
                &names,
            ));
            ub.push(build_row(
                &l.upper,
                BoundSide::Upper,
                steps_positive[k],
                &names,
            ));
            step.push(build_row(
                &l.step,
                BoundSide::Step,
                steps_positive[k],
                &names,
            ));
        }
        BoundsMatrices {
            names,
            steps_positive,
            lb,
            ub,
            step,
        }
    }

    /// Index-variable names, outermost first.
    pub fn names(&self) -> &[Symbol] {
        &self.names
    }

    /// Nest depth.
    pub fn depth(&self) -> usize {
        self.names.len()
    }

    /// The `LB` row for loop `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn lower(&self, k: usize) -> &BoundRow {
        &self.lb[k]
    }

    /// The `UB` row for loop `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn upper(&self, k: usize) -> &BoundRow {
        &self.ub[k]
    }

    /// The `STEP` row for loop `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn step(&self, k: usize) -> &BoundRow {
        &self.step[k]
    }

    /// The paper's `type(expr, x)` query evaluated from the stored bound
    /// (with the `max`/`min` special case applied).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn entry_type(&self, side: BoundSide, row: usize, wrt: &Symbol) -> ExprType {
        let r = match side {
            BoundSide::Lower => &self.lb[row],
            BoundSide::Upper => &self.ub[row],
            BoundSide::Step => &self.step[row],
        };
        classify_bound(&r.expr, side, self.steps_positive[row], wrt, &self.names)
    }

    /// Renders one matrix in the style of Fig. 5: one row per loop, the
    /// `(i, 0)` invariant column first, then coefficient columns for the
    /// *outer* variables (entries `(i, j)` with `i > j`); lists appear as
    /// `<a, b>`.
    pub fn render(&self, side: BoundSide) -> String {
        let rows = match side {
            BoundSide::Lower => &self.lb,
            BoundSide::Upper => &self.ub,
            BoundSide::Step => &self.step,
        };
        let title = match side {
            BoundSide::Lower => "LB",
            BoundSide::Upper => "UB",
            BoundSide::Step => "STEP",
        };
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(self.depth());
        for (i, row) in rows.iter().enumerate() {
            let mut line = Vec::with_capacity(self.depth() + 1);
            line.push(render_list(
                row.terms.iter().map(|t| t.invariant.to_string()),
            ));
            for j in 0..self.depth() {
                if j >= i {
                    line.push(".".to_string());
                } else {
                    line.push(render_list(
                        row.terms.iter().map(|t| t.coeffs[j].to_string()),
                    ));
                }
            }
            cells.push(line);
        }
        let ncols = self.depth() + 1;
        let widths: Vec<usize> = (0..ncols)
            .map(|c| cells.iter().map(|r| r[c].len()).max().unwrap_or(1))
            .collect();
        let mut out = String::new();
        for (i, line) in cells.iter().enumerate() {
            let prefix = if i == 0 {
                format!("{title:>4} = [ ")
            } else {
                "       [ ".to_string()
            };
            out.push_str(&prefix);
            for (c, cell) in line.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:>width$}", width = widths[c]));
            }
            out.push_str(" ]\n");
        }
        out
    }
}

fn build_row(expr: &Expr, side: BoundSide, step_positive: bool, names: &[Symbol]) -> BoundRow {
    let splittable = matches!(
        (side, step_positive, expr),
        (BoundSide::Lower, true, Expr::Max(_))
            | (BoundSide::Upper, true, Expr::Min(_))
            | (BoundSide::Lower, false, Expr::Min(_))
            | (BoundSide::Upper, false, Expr::Max(_))
    );
    let terms: Vec<MatrixEntry> = if splittable {
        match expr {
            Expr::Max(items) | Expr::Min(items) => items
                .iter()
                .map(|e| MatrixEntry::from_expr(e, names))
                .collect(),
            _ => unreachable!("splittable implies min/max"),
        }
    } else {
        vec![MatrixEntry::from_expr(expr, names)]
    };
    BoundRow {
        terms,
        expr: expr.clone(),
    }
}

fn render_list(items: impl Iterator<Item = String>) -> String {
    let v: Vec<String> = items.collect();
    if v.len() == 1 {
        v.into_iter().next().expect("one")
    } else {
        format!("<{}>", v.join(", "))
    }
}

impl fmt::Display for BoundsMatrices {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            self.render(BoundSide::Lower),
            self.render(BoundSide::Upper),
            self.render(BoundSide::Step)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irlt_ir::Parser;

    /// The Fig. 5 nest:
    /// ```text
    /// do i = max(n, 3), 100, 2
    ///   do j = 1, min(2*i, 512), 1
    ///     do k = sqrt(i)/2, 2*j, i
    /// ```
    fn figure5() -> LoopNest {
        Parser::new(
            "do i = max(n, 3), 100, 2\n do j = 1, min(2*i, 512)\n  do k = sqrt(i)/2, 2*j, i\n   a(i, j, k) = 0\n  enddo\n enddo\nenddo",
        )
        .parse_nest()
        .unwrap()
    }

    #[test]
    fn figure5_lb_entries() {
        let m = BoundsMatrices::from_nest(&figure5());
        // LB row 1: max<n, 3> in the invariant column.
        let row = m.lower(0);
        assert_eq!(row.terms.len(), 2);
        assert_eq!(row.terms[0].invariant.to_string(), "n");
        assert_eq!(row.terms[1].invariant.to_string(), "3");
        // LB row 2: constant 1.
        assert_eq!(m.lower(1).terms[0].invariant, Expr::int(1));
        // LB row 3: sqrt(i)/2 — nonlinear in i, folded into the invariant
        // column with a zero coefficient.
        let row = m.lower(2);
        assert_eq!(row.terms[0].coeffs, vec![0, 0, 0]);
        assert_eq!(row.terms[0].invariant.to_string(), "sqrt(i) / 2");
        assert!(row.terms[0].nonlinear_in.contains(&Symbol::new("i")));
    }

    #[test]
    fn figure5_ub_entries() {
        let m = BoundsMatrices::from_nest(&figure5());
        // UB row 2: min(2·i, 512) → coefficient list <2, 0> on i,
        // invariant list <0, 512>.
        let row = m.upper(1);
        assert_eq!(row.terms.len(), 2);
        assert_eq!(row.terms[0].coeffs[0], 2);
        assert_eq!(row.terms[0].invariant, Expr::int(0));
        assert_eq!(row.terms[1].coeffs[0], 0);
        assert_eq!(row.terms[1].invariant, Expr::int(512));
        // UB row 3: 2·j.
        assert_eq!(m.upper(2).terms[0].coeffs, vec![0, 2, 0]);
    }

    #[test]
    fn figure5_step_entries() {
        let m = BoundsMatrices::from_nest(&figure5());
        assert_eq!(m.step(0).terms[0].invariant, Expr::int(2));
        assert_eq!(m.step(1).terms[0].invariant, Expr::int(1));
        // s3 = i: coefficient 1 on i.
        assert_eq!(m.step(2).terms[0].coeffs, vec![1, 0, 0]);
    }

    #[test]
    fn figure5_type_tags() {
        let m = BoundsMatrices::from_nest(&figure5());
        let (i, j) = (Symbol::new("i"), Symbol::new("j"));
        // The paper's annotations:
        assert_eq!(m.entry_type(BoundSide::Upper, 1, &i), ExprType::Linear);
        assert_eq!(m.entry_type(BoundSide::Lower, 2, &i), ExprType::Nonlinear);
        assert_eq!(m.entry_type(BoundSide::Upper, 2, &j), ExprType::Linear);
        assert_eq!(m.entry_type(BoundSide::Step, 2, &i), ExprType::Linear);
        // "type = invar or const, in all other cases."
        assert_eq!(m.entry_type(BoundSide::Lower, 1, &i), ExprType::Const);
        assert_eq!(m.entry_type(BoundSide::Lower, 0, &i), ExprType::Invar);
        assert_eq!(m.entry_type(BoundSide::Upper, 0, &i), ExprType::Const);
    }

    #[test]
    fn render_shape() {
        let m = BoundsMatrices::from_nest(&figure5());
        let text = m.render(BoundSide::Lower);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("LB"));
        assert!(lines[0].contains("<n, 3>"), "{text}");
        assert!(lines[2].contains("sqrt(i) / 2"), "{text}");
        // Upper-triangular cells are dots.
        assert!(lines[0].contains('.'));
        let ub = m.render(BoundSide::Upper);
        assert!(ub.contains("<0, 512>"), "{ub}");
        assert!(ub.contains("<2, 0>"), "{ub}");
    }

    #[test]
    fn mixed_linear_nonlinear_row() {
        // 2·i + sqrt(i): coefficient 2 recorded, sqrt(i) folded.
        let nest =
            Parser::new("do i = 1, n\n do j = 2*i + sqrt(i), n\n  a(i, j) = 0\n enddo\nenddo")
                .parse_nest()
                .unwrap();
        let m = BoundsMatrices::from_nest(&nest);
        let row = m.lower(1);
        assert_eq!(row.terms[0].coeffs[0], 2);
        assert_eq!(row.terms[0].invariant.to_string(), "sqrt(i)");
        assert!(row.terms[0].nonlinear_in.contains(&Symbol::new("i")));
        assert_eq!(
            m.entry_type(BoundSide::Lower, 1, &Symbol::new("i")),
            ExprType::Nonlinear
        );
    }

    #[test]
    fn display_concatenates_three_matrices() {
        let m = BoundsMatrices::from_nest(&figure5());
        let s = m.to_string();
        assert!(s.contains("LB") && s.contains("UB") && s.contains("STEP"));
    }
}
