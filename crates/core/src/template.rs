//! The kernel set of transformation templates (Table 1).
//!
//! A *transformation template* has parameters; supplying values creates a
//! *template instantiation*. The kernel set in the paper is:
//!
//! | Template | Parameters |
//! |---|---|
//! | `Unimodular(n, M)` | `M` an `n×n` unimodular matrix |
//! | `ReversePermute(n, rev, perm)` | reverse mask + permutation map |
//! | `Parallelize(n, parflag)` | which loops become `pardo` |
//! | `Block(n, i, j, bsize)` | contiguous range to tile + block sizes |
//! | `Coalesce(n, i, j)` | contiguous range to collapse into one loop |
//! | `Interleave(n, i, j, isize)` | contiguous range + interleave factors |
//!
//! The set is *extensible*: anything implementing
//! [`KernelTemplate`](crate::KernelTemplate) participates in sequences.

use irlt_ir::Expr;
use irlt_unimodular::IntMatrix;
use std::fmt;

/// A validated permutation map: `perm[k]` is the **new position** of old
/// loop `k` (the paper's "loop `i` should be moved to position `perm[i]`").
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Permutation(Vec<usize>);

impl Permutation {
    /// Validates and wraps a permutation of `0..map.len()`.
    ///
    /// # Errors
    ///
    /// Returns [`TemplateError::NotAPermutation`] if `map` repeats or skips
    /// a position.
    ///
    /// # Examples
    ///
    /// ```
    /// use irlt_core::Permutation;
    ///
    /// let p = Permutation::new(vec![2, 0, 1])?;
    /// assert_eq!(p.new_position(0), 2);
    /// assert_eq!(p.inverse().new_position(2), 0);
    /// # Ok::<(), irlt_core::TemplateError>(())
    /// ```
    pub fn new(map: Vec<usize>) -> Result<Permutation, TemplateError> {
        let n = map.len();
        let mut seen = vec![false; n];
        for &p in &map {
            if p >= n || seen[p] {
                return Err(TemplateError::NotAPermutation { map: map.clone() });
            }
            seen[p] = true;
        }
        Ok(Permutation(map))
    }

    /// The identity permutation on `n` loops.
    pub fn identity(n: usize) -> Permutation {
        Permutation((0..n).collect())
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the permutation is empty (never for validated instances of
    /// positive size).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// New position of old index `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn new_position(&self, k: usize) -> usize {
        self.0[k]
    }

    /// The raw map.
    pub fn as_slice(&self) -> &[usize] {
        &self.0
    }

    /// The inverse permutation: `inverse()[p] = k` iff `self[k] = p`.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0; self.0.len()];
        for (old, &new) in self.0.iter().enumerate() {
            inv[new] = old;
        }
        Permutation(inv)
    }

    /// Composition: first `self`, then `then` (`result[k] = then[self[k]]`).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn then(&self, then: &Permutation) -> Permutation {
        assert_eq!(self.len(), then.len(), "permutation size mismatch");
        Permutation(self.0.iter().map(|&p| then.0[p]).collect())
    }

    /// True if this is the identity.
    pub fn is_identity(&self) -> bool {
        self.0.iter().enumerate().all(|(k, &p)| k == p)
    }
}

impl fmt::Display for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (k, p) in self.0.iter().enumerate() {
            if k > 0 {
                write!(f, " ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

/// One instantiation of a kernel transformation template (Table 1).
///
/// Construct via the validating constructors ([`Template::unimodular`],
/// [`Template::block`], …); the fields are then guaranteed well-formed.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Template {
    /// `Unimodular(n, M)`: apply the unimodular matrix `M` to the
    /// iteration space.
    Unimodular {
        /// The `n×n` unimodular transformation matrix.
        matrix: IntMatrix,
    },
    /// `ReversePermute(n, rev, perm)`: reverse the loops with
    /// `rev[k] = true`, then move loop `k` to position `perm[k]`.
    ReversePermute {
        /// Which loops to reverse (before permuting).
        rev: Vec<bool>,
        /// Where each loop moves.
        perm: Permutation,
    },
    /// `Parallelize(n, parflag)`: make loop `k` a `pardo` where
    /// `parflag[k] = true`.
    Parallelize {
        /// Which loops become parallel.
        parflag: Vec<bool>,
    },
    /// `Block(n, i, j, bsize)`: tile the contiguous loops `i..=j` with
    /// block sizes `bsize` (one expression per loop in the range).
    Block {
        /// Nest size.
        n: usize,
        /// First (outermost) blocked loop, 0-based.
        i: usize,
        /// Last blocked loop, 0-based (`i <= j`).
        j: usize,
        /// Block-size expression per loop in `i..=j`.
        bsize: Vec<Expr>,
    },
    /// `Coalesce(n, i, j)`: collapse the contiguous loops `i..=j` into a
    /// single loop.
    Coalesce {
        /// Nest size.
        n: usize,
        /// First coalesced loop, 0-based.
        i: usize,
        /// Last coalesced loop, 0-based (`i <= j`).
        j: usize,
    },
    /// `Interleave(n, i, j, isize)`: split each loop in `i..=j` into an
    /// interleave-class selector and a strided element loop.
    Interleave {
        /// Nest size.
        n: usize,
        /// First interleaved loop, 0-based.
        i: usize,
        /// Last interleaved loop, 0-based (`i <= j`).
        j: usize,
        /// Interleave factor per loop in `i..=j`.
        isize_: Vec<Expr>,
    },
}

/// Invalid template parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TemplateError {
    /// The matrix is not square-integral with determinant ±1.
    NotUnimodular,
    /// The map is not a permutation of `0..n`.
    NotAPermutation {
        /// The offending map.
        map: Vec<usize>,
    },
    /// A mask/size vector has the wrong length.
    ArityMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        found: usize,
    },
    /// A loop range `i..=j` is empty or out of bounds.
    BadRange {
        /// Start of the range.
        i: usize,
        /// End of the range.
        j: usize,
        /// Nest size.
        n: usize,
    },
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::NotUnimodular => {
                f.write_str("matrix is not unimodular (square, integral, det ±1)")
            }
            TemplateError::NotAPermutation { map } => {
                write!(f, "{map:?} is not a permutation")
            }
            TemplateError::ArityMismatch { expected, found } => {
                write!(f, "expected {expected} entries, found {found}")
            }
            TemplateError::BadRange { i, j, n } => {
                write!(f, "loop range {i}..={j} invalid for nest of size {n}")
            }
        }
    }
}

impl std::error::Error for TemplateError {}

impl Template {
    /// Creates a `Unimodular(n, M)` instantiation.
    ///
    /// # Errors
    ///
    /// Returns [`TemplateError::NotUnimodular`] if `matrix` fails the
    /// unimodularity check.
    pub fn unimodular(matrix: IntMatrix) -> Result<Template, TemplateError> {
        if matrix.is_unimodular() {
            Ok(Template::Unimodular { matrix })
        } else {
            Err(TemplateError::NotUnimodular)
        }
    }

    /// Creates a `ReversePermute(n, rev, perm)` instantiation.
    ///
    /// # Errors
    ///
    /// Returns [`TemplateError`] if `perm` is not a permutation or `rev`
    /// has a different length.
    pub fn reverse_permute(rev: Vec<bool>, perm: Vec<usize>) -> Result<Template, TemplateError> {
        let perm = Permutation::new(perm)?;
        if rev.len() != perm.len() {
            return Err(TemplateError::ArityMismatch {
                expected: perm.len(),
                found: rev.len(),
            });
        }
        Ok(Template::ReversePermute { rev, perm })
    }

    /// Creates a `Parallelize(n, parflag)` instantiation.
    pub fn parallelize(parflag: Vec<bool>) -> Template {
        Template::Parallelize { parflag }
    }

    /// Creates a `Block(n, i, j, bsize)` instantiation.
    ///
    /// # Errors
    ///
    /// Returns [`TemplateError`] if the range is invalid or `bsize` does
    /// not have `j − i + 1` entries.
    pub fn block(
        n: usize,
        i: usize,
        j: usize,
        bsize: Vec<Expr>,
    ) -> Result<Template, TemplateError> {
        check_range(n, i, j)?;
        if bsize.len() != j - i + 1 {
            return Err(TemplateError::ArityMismatch {
                expected: j - i + 1,
                found: bsize.len(),
            });
        }
        Ok(Template::Block { n, i, j, bsize })
    }

    /// Creates a `Coalesce(n, i, j)` instantiation.
    ///
    /// # Errors
    ///
    /// Returns [`TemplateError::BadRange`] if the range is invalid.
    pub fn coalesce(n: usize, i: usize, j: usize) -> Result<Template, TemplateError> {
        check_range(n, i, j)?;
        Ok(Template::Coalesce { n, i, j })
    }

    /// Creates an `Interleave(n, i, j, isize)` instantiation.
    ///
    /// # Errors
    ///
    /// Returns [`TemplateError`] if the range is invalid or `isize_` does
    /// not have `j − i + 1` entries.
    pub fn interleave(
        n: usize,
        i: usize,
        j: usize,
        isize_: Vec<Expr>,
    ) -> Result<Template, TemplateError> {
        check_range(n, i, j)?;
        if isize_.len() != j - i + 1 {
            return Err(TemplateError::ArityMismatch {
                expected: j - i + 1,
                found: isize_.len(),
            });
        }
        Ok(Template::Interleave { n, i, j, isize_ })
    }

    /// The template's name as in Table 1.
    pub fn name(&self) -> &'static str {
        match self {
            Template::Unimodular { .. } => "Unimodular",
            Template::ReversePermute { .. } => "ReversePermute",
            Template::Parallelize { .. } => "Parallelize",
            Template::Block { .. } => "Block",
            Template::Coalesce { .. } => "Coalesce",
            Template::Interleave { .. } => "Interleave",
        }
    }

    /// Input nest size `n`.
    pub fn input_size(&self) -> usize {
        match self {
            Template::Unimodular { matrix } => matrix.rows(),
            Template::ReversePermute { perm, .. } => perm.len(),
            Template::Parallelize { parflag } => parflag.len(),
            Template::Block { n, .. }
            | Template::Coalesce { n, .. }
            | Template::Interleave { n, .. } => *n,
        }
    }

    /// Output nest size `n'` (Tables 3–4): `Block`/`Interleave` add
    /// `j − i + 1` loops, `Coalesce` removes `j − i`, all others preserve
    /// the size.
    pub fn output_size(&self) -> usize {
        let n = self.input_size();
        match self {
            Template::Block { i, j, .. } | Template::Interleave { i, j, .. } => n + (j - i + 1),
            Template::Coalesce { i, j, .. } => n - (j - i),
            _ => n,
        }
    }
}

fn check_range(n: usize, i: usize, j: usize) -> Result<(), TemplateError> {
    if i <= j && j < n {
        Ok(())
    } else {
        Err(TemplateError::BadRange { i, j, n })
    }
}

/// Structural fingerprint over the derived [`Hash`] — used by the shared
/// legality cache's template interner ([`crate::SharedLegalityCache`]).
impl irlt_dependence::Fingerprint128 for Template {
    fn fingerprint128(&self) -> u128 {
        irlt_dependence::fp128(self)
    }
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Template::Unimodular { matrix } => {
                write!(f, "Unimodular(n={}, M={matrix})", matrix.rows())
            }
            Template::ReversePermute { rev, perm } => {
                write!(f, "ReversePermute(n={}, rev=[", rev.len())?;
                for (k, r) in rev.iter().enumerate() {
                    if k > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{}", if *r { "T" } else { "F" })?;
                }
                write!(f, "], perm={perm})")
            }
            Template::Parallelize { parflag } => {
                write!(f, "Parallelize(n={}, parflag=[", parflag.len())?;
                for (k, p) in parflag.iter().enumerate() {
                    if k > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{}", i32::from(*p))?;
                }
                write!(f, "])")
            }
            Template::Block { n, i, j, bsize } => {
                write!(f, "Block(n={n}, i={i}, j={j}, bsize=[")?;
                for (k, b) in bsize.iter().enumerate() {
                    if k > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, "])")
            }
            Template::Coalesce { n, i, j } => write!(f, "Coalesce(n={n}, i={i}, j={j})"),
            Template::Interleave { n, i, j, isize_ } => {
                write!(f, "Interleave(n={n}, i={i}, j={j}, isize=[")?;
                for (k, b) in isize_.iter().enumerate() {
                    if k > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, "])")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_validation() {
        assert!(Permutation::new(vec![0, 1, 2]).is_ok());
        assert!(Permutation::new(vec![2, 0, 1]).is_ok());
        assert!(matches!(
            Permutation::new(vec![0, 0, 1]),
            Err(TemplateError::NotAPermutation { .. })
        ));
        assert!(Permutation::new(vec![0, 3, 1]).is_err());
    }

    #[test]
    fn permutation_inverse_and_compose() {
        let p = Permutation::new(vec![2, 0, 1]).unwrap();
        let inv = p.inverse();
        assert!(p.then(&inv).is_identity());
        assert!(inv.then(&p).is_identity());
        assert_eq!(p.to_string(), "[2 0 1]");
        assert!(Permutation::identity(4).is_identity());
    }

    #[test]
    fn constructors_validate() {
        assert!(Template::unimodular(IntMatrix::identity(3)).is_ok());
        assert!(Template::unimodular(IntMatrix::from_rows(&[&[2]])).is_err());
        assert!(Template::reverse_permute(vec![false, true], vec![1, 0]).is_ok());
        assert!(matches!(
            Template::reverse_permute(vec![false], vec![1, 0]),
            Err(TemplateError::ArityMismatch {
                expected: 2,
                found: 1
            })
        ));
        assert!(Template::block(3, 0, 1, vec![Expr::int(8), Expr::int(8)]).is_ok());
        assert!(Template::block(3, 0, 1, vec![Expr::int(8)]).is_err());
        assert!(Template::block(3, 2, 1, vec![]).is_err());
        assert!(Template::coalesce(3, 0, 2).is_ok());
        assert!(Template::coalesce(3, 0, 3).is_err());
        assert!(Template::interleave(2, 0, 0, vec![Expr::int(4)]).is_ok());
    }

    #[test]
    fn sizes_per_table() {
        let b = Template::block(3, 0, 2, vec![Expr::int(4); 3]).unwrap();
        assert_eq!(b.input_size(), 3);
        assert_eq!(b.output_size(), 6);
        let c = Template::coalesce(6, 0, 1).unwrap();
        assert_eq!(c.output_size(), 5);
        let i = Template::interleave(2, 1, 1, vec![Expr::int(4)]).unwrap();
        assert_eq!(i.output_size(), 3);
        let p = Template::parallelize(vec![true, false]);
        assert_eq!(p.output_size(), 2);
        let u = Template::unimodular(IntMatrix::identity(2)).unwrap();
        assert_eq!((u.input_size(), u.output_size()), (2, 2));
    }

    #[test]
    fn display_forms() {
        let t = Template::reverse_permute(vec![false, true], vec![1, 0]).unwrap();
        assert_eq!(t.to_string(), "ReversePermute(n=2, rev=[F T], perm=[1 0])");
        let t = Template::parallelize(vec![true, false]);
        assert_eq!(t.to_string(), "Parallelize(n=2, parflag=[1 0])");
        let t = Template::block(2, 0, 1, vec![Expr::var("bi"), Expr::var("bj")]).unwrap();
        assert_eq!(t.to_string(), "Block(n=2, i=0, j=1, bsize=[bi bj])");
        let t = Template::coalesce(4, 1, 2).unwrap();
        assert_eq!(t.to_string(), "Coalesce(n=4, i=1, j=2)");
    }

    #[test]
    fn names() {
        assert_eq!(Template::parallelize(vec![true]).name(), "Parallelize");
        assert_eq!(Template::coalesce(2, 0, 1).unwrap().name(), "Coalesce");
    }
}
