//! A catalog of classical loop transformations expressed as template
//! instantiations — the paper's point that interchange, reversal,
//! permutation, skewing, parallelization, strip-mining, blocking,
//! coalescing, and interleaving, historically "defined in isolation",
//! all arise from the small kernel set.

use crate::sequence::{SequenceError, TransformSeq};
use crate::template::{Template, TemplateError};
use irlt_ir::Expr;
use irlt_unimodular::IntMatrix;

/// Loop interchange of loops `a` and `b` as a `ReversePermute`
/// (the paper's preferred engine: no matrix work, names reused).
///
/// # Errors
///
/// Returns [`TemplateError::BadRange`] if `a` or `b` is out of range.
pub fn interchange(n: usize, a: usize, b: usize) -> Result<Template, TemplateError> {
    if a >= n || b >= n {
        return Err(TemplateError::BadRange {
            i: a.min(b),
            j: a.max(b),
            n,
        });
    }
    let mut perm: Vec<usize> = (0..n).collect();
    perm.swap(a, b);
    Template::reverse_permute(vec![false; n], perm)
}

/// Loop interchange as a `Unimodular` instantiation (for nests whose
/// bounds are linear but not invariant, e.g. triangular — Fig. 4(a)).
///
/// # Errors
///
/// Returns [`TemplateError::BadRange`] if `a` or `b` is out of range.
pub fn interchange_unimodular(n: usize, a: usize, b: usize) -> Result<Template, TemplateError> {
    if a >= n || b >= n {
        return Err(TemplateError::BadRange {
            i: a.min(b),
            j: a.max(b),
            n,
        });
    }
    Template::unimodular(IntMatrix::interchange(n, a, b))
}

/// Reversal of loop `k` as a `ReversePermute` (works for symbolic steps).
///
/// # Errors
///
/// Returns [`TemplateError::BadRange`] if `k` is out of range.
pub fn reversal(n: usize, k: usize) -> Result<Template, TemplateError> {
    if k >= n {
        return Err(TemplateError::BadRange { i: k, j: k, n });
    }
    let mut rev = vec![false; n];
    rev[k] = true;
    Template::reverse_permute(rev, (0..n).collect())
}

/// General loop permutation (`perm[k]` = new position of loop `k`).
///
/// # Errors
///
/// Returns [`TemplateError::NotAPermutation`] for an invalid map.
pub fn permute(perm: Vec<usize>) -> Result<Template, TemplateError> {
    let n = perm.len();
    Template::reverse_permute(vec![false; n], perm)
}

/// Loop skewing: `x_dst' = x_dst + factor · x_src` as a `Unimodular`.
///
/// # Errors
///
/// Returns [`TemplateError::BadRange`] for invalid loop indices.
pub fn skew(n: usize, src: usize, dst: usize, factor: i64) -> Result<Template, TemplateError> {
    if src >= n || dst >= n || src == dst {
        return Err(TemplateError::BadRange {
            i: src.min(dst),
            j: src.max(dst),
            n,
        });
    }
    Template::unimodular(IntMatrix::skew(n, src, dst, factor))
}

/// Strip-mining of loop `k` with the given strip size: `Block` on the
/// single-loop range (`Blocking can be viewed as a combination of strip
/// mining and interchanging`).
///
/// # Errors
///
/// Returns [`TemplateError::BadRange`] if `k` is out of range.
pub fn strip_mine(n: usize, k: usize, size: Expr) -> Result<Template, TemplateError> {
    Template::block(n, k, k, vec![size])
}

/// Tiling of the loops `i..=j` — an alias for `Block`.
///
/// # Errors
///
/// See [`Template::block`].
pub fn tile(n: usize, i: usize, j: usize, sizes: Vec<Expr>) -> Result<Template, TemplateError> {
    Template::block(n, i, j, sizes)
}

/// Parallelization of a single loop.
///
/// # Errors
///
/// Returns [`TemplateError::BadRange`] if `k` is out of range.
pub fn parallelize_loop(n: usize, k: usize) -> Result<Template, TemplateError> {
    if k >= n {
        return Err(TemplateError::BadRange { i: k, j: k, n });
    }
    let mut flags = vec![false; n];
    flags[k] = true;
    Ok(Template::parallelize(flags))
}

/// The classical *wavefront* (hyperplane) transformation for a 2-deep
/// nest: skew the inner loop by the outer, interchange, and parallelize
/// the (now dependence-free) inner loop — Lamport's hyperplane method as
/// a three-template sequence.
///
/// # Errors
///
/// Never fails for `n = 2` construction; returns [`SequenceError`] only if
/// an internal instantiation is invalid (which would be a bug).
pub fn wavefront2() -> Result<TransformSeq, SequenceError> {
    TransformSeq::new(2)
        .unimodular(IntMatrix::skew(2, 0, 1, 1))?
        .unimodular(IntMatrix::interchange(2, 0, 1))?
        .parallelize(vec![false, true])
}

#[cfg(test)]
mod tests {
    use super::*;
    use irlt_dependence::{DepSet, DepVector};
    use irlt_ir::parse_nest;

    #[test]
    fn interchange_is_reverse_permute() {
        let t = interchange(3, 0, 2).unwrap();
        match t {
            Template::ReversePermute { ref rev, ref perm } => {
                assert_eq!(rev, &vec![false; 3]);
                assert_eq!(perm.as_slice(), &[2, 1, 0]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(interchange(2, 0, 5).is_err());
    }

    #[test]
    fn reversal_flips_one_mask_bit() {
        let t = reversal(3, 1).unwrap();
        match t {
            Template::ReversePermute { ref rev, ref perm } => {
                assert_eq!(rev, &vec![false, true, false]);
                assert!(perm.is_identity());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn strip_mine_is_single_loop_block() {
        let t = strip_mine(3, 1, Expr::int(64)).unwrap();
        assert_eq!(t.output_size(), 4);
        assert_eq!(t.name(), "Block");
    }

    #[test]
    fn wavefront_makes_stencil_inner_parallel() {
        // Fig. 1 stencil: skew+interchange leaves deps (1,1) and (1,0);
        // the inner loop then carries nothing, so pardo is legal.
        let nest = parse_nest(
            "do i = 2, n - 1\n do j = 2, n - 1\n  a(i, j) = a(i - 1, j) + a(i, j - 1)\n enddo\nenddo",
        )
        .unwrap();
        let deps = DepSet::from_distances(&[&[1, 0], &[0, 1]]);
        let t = wavefront2().unwrap();
        assert!(t.is_legal(&nest, &deps).is_legal());
        let out = t.apply(&nest).unwrap();
        assert!(!out.level(0).kind.is_parallel());
        assert!(out.level(1).kind.is_parallel());
        // Without the skew, parallelizing the inner loop is illegal.
        let bare = TransformSeq::new(2).parallelize(vec![false, true]).unwrap();
        assert!(!bare.is_legal(&nest, &deps).is_legal());
    }

    #[test]
    fn skew_maps_dependences() {
        let t = skew(2, 0, 1, 1).unwrap();
        let d = t.map_dep_vector(&DepVector::distances(&[1, -1]));
        assert_eq!(d, vec![DepVector::distances(&[1, 0])]);
        assert!(skew(2, 1, 1, 1).is_err());
    }

    #[test]
    fn parallelize_loop_builds_flags() {
        let t = parallelize_loop(3, 2).unwrap();
        match t {
            Template::Parallelize { ref parflag } => {
                assert_eq!(parflag, &vec![false, false, true]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parallelize_loop(3, 3).is_err());
    }

    #[test]
    fn permute_and_tile_aliases() {
        assert!(permute(vec![1, 2, 0]).is_ok());
        assert!(permute(vec![1, 1, 0]).is_err());
        let t = tile(2, 0, 1, vec![Expr::int(8), Expr::int(8)]).unwrap();
        assert_eq!(t.output_size(), 4);
    }

    #[test]
    fn interchange_unimodular_handles_triangular() {
        let nest = parse_nest("do i = 1, n\n do j = 1, i\n  a(i, j) = 0\n enddo\nenddo").unwrap();
        let via_matrix = interchange_unimodular(2, 0, 1).unwrap();
        assert!(via_matrix.check_preconditions(&nest).is_ok());
        let via_rp = interchange(2, 0, 1).unwrap();
        assert!(via_rp.check_preconditions(&nest).is_err());
    }
}
