//! Persistent snapshots of the shared legality cache (`irlt-cache/v1`).
//!
//! A batch run's [`SharedLegalityCache`] is a memo of pure legality
//! subproblems, so it is valid *across* processes: the same
//! `(prune, shape, mapped, template)` key always replays the same
//! outcome. This module serializes a fingerprint-mode cache to a
//! versioned, zero-dependency binary artifact and restores it in a later
//! process, turning the first run's misses into the second run's hits
//! ([`SharedLegalityCache::save_snapshot`] /
//! [`SharedLegalityCache::load_snapshot`], `--cache-save` /
//! `--cache-load` on `irlt-batch`).
//!
//! # What is (and is not) persisted
//!
//! The snapshot stores structural **values**: the three interner pools
//! (shapes, dependence sets, templates) in id order, and the resident
//! entries as pool-relative ids. It never stores 128-bit fingerprints or
//! hashes — `irlt_dependence::fingerprint` documents that fingerprints
//! are not a stable serialization format — so loading *re-interns* every
//! value, recomputing fingerprints under the running build and remapping
//! old ids to new ones. That makes a warm start exact by the same
//! argument as a cold one (interned ids are exact), and lets a snapshot
//! load into a cache that already holds entries. The artifact checksum is
//! a separate FNV-1a 64 over the payload bytes, chosen precisely because
//! it is a fixed, build-independent function.
//!
//! # Byte layout (`irlt-cache/v1`)
//!
//! All integers are little-endian and fixed-width; `vec(X)` is a `u32`
//! count followed by that many `X`; `str` is a `u32` byte length followed
//! by UTF-8 bytes.
//!
//! ```text
//! header   := magic[10]=b"irlt-cache"  version:u16=1
//!             payload_len:u64  checksum:u64      (FNV-1a 64 of payload)
//! payload  := shapes:vec(nest)  deps:vec(depset)  templates:vec(template)
//!             entries:vec(entry)
//! nest     := loops:vec(loop)  inits:vec(stmt)  body:vec(stmt)
//! loop     := var:str  lower:expr  upper:expr  step:expr  kind:u8
//! expr     := tag:u8 …    (0 Const i64 · 1 Var str · 2..=7 binary ops ·
//!                          8 Neg · 9/10 Min/Max vec(expr) ·
//!                          11 Call str vec(expr) · 12 ArrayRead aref)
//! aref     := array:str  subscripts:vec(expr)
//! stmt     := tag:u8 …    (0 Assign target expr · 1 Guarded expr stmt)
//! target   := tag:u8 …    (0 Scalar str · 1 Array aref)
//! depset   := vec(depvec)
//! depvec   := vec(depelem)
//! depelem  := tag:u8 …    (0 Dist i64 · 1 Dir u8)
//! template := tag:u8 …    (0 Unimodular matrix · 1 ReversePermute
//!                          vec(u8) perm · 2 Parallelize vec(u8) ·
//!                          3 Block n i j vec(expr) · 4 Coalesce n i j ·
//!                          5 Interleave n i j vec(expr); n/i/j are u32)
//! matrix   := rows:u32  cols:u32  cells:i64 × rows·cols
//! perm     := vec(u32)
//! entry    := prune:u8  shape:u32  mapped:u32  template:u32  outcome
//! outcome  := 0:u8  child_prune:u8  child_shape:u32  child_mapped:u32
//!           | 1:u8  reason
//! reason   := tag:u8 …    (0 Dependences vec(depvec) · 1 Precondition
//!                          step:u64 precond · 2 CodeGen step:u64 apply)
//! ```
//!
//! (`precond`/`apply` mirror the error enums field-for-field; template
//! names inside them are stored as the tag of the matching Table 1
//! template.) Every decode is bounds-checked and depth-limited:
//! truncated, corrupted, or adversarial input yields a
//! [`SnapshotError`], never a panic, and the cache is untouched unless
//! the **whole** payload decodes — rejection always degrades to a clean
//! cold start.

use crate::codegen::ApplyError;
use crate::precond::PrecondError;
use crate::sequence::IllegalReason;
use crate::shared::{CachedOutcome, KeyMode, ProbeKey, SharedLegalityCache, StateKey};
use crate::template::Template;
use irlt_dependence::{DepElem, DepSet, DepVector, Dir};
use irlt_ir::{
    ArrayRef, BoundSide, Expr, ExprType, Loop, LoopKind, LoopNest, Stmt, Symbol, Target,
};
use irlt_unimodular::{FmError, IntMatrix, UnimodularError};
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// `b"irlt-cache"` — the artifact family.
pub const SNAPSHOT_MAGIC: &[u8; 10] = b"irlt-cache";
/// Current format version (`irlt-cache/v1`).
pub const SNAPSHOT_VERSION: u16 = 1;

const HEADER_LEN: usize = 10 + 2 + 8 + 8;
/// Maximum nesting of recursive structures (`Expr`, guarded `Stmt`) a
/// decoder will follow; deeper input is rejected, not recursed into.
const MAX_DEPTH: usize = 256;

/// Why a snapshot could not be produced or restored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Snapshots serialize interned ids; the legacy `Display` key mode
    /// has none.
    UnsupportedKeyMode,
    /// The input ended before a complete value.
    Truncated,
    /// The input does not start with `b"irlt-cache"`.
    BadMagic,
    /// The input is a different format version.
    BadVersion {
        /// The version the file claims.
        found: u16,
    },
    /// The payload bytes do not match the recorded checksum.
    BadChecksum {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the actual payload bytes.
        found: u64,
    },
    /// The payload decoded to something structurally invalid.
    Malformed(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::UnsupportedKeyMode => {
                f.write_str("snapshots require the fingerprint key mode")
            }
            SnapshotError::Truncated => f.write_str("snapshot truncated"),
            SnapshotError::BadMagic => f.write_str("not an irlt-cache snapshot"),
            SnapshotError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (expected {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::BadChecksum { expected, found } => {
                write!(
                    f,
                    "snapshot checksum mismatch (header {expected:#018x}, payload {found:#018x})"
                )
            }
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// What `load_snapshot` restored.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotLoadStats {
    /// Entries inserted into the cache (owner = `SNAPSHOT_OWNER`).
    pub entries_loaded: u64,
    /// Entries skipped because their shard was full or the slot was
    /// already occupied (loading never evicts live entries).
    pub entries_skipped: u64,
    /// Shapes re-interned from the snapshot's pool.
    pub shapes: u64,
    /// Dependence sets re-interned.
    pub deps: u64,
    /// Templates re-interned.
    pub templates: u64,
}

/// FNV-1a 64 over `bytes` — fixed, build-independent, and fast enough
/// for a load-time integrity check (this is *not* the structural
/// fingerprint, which may change across builds and is never persisted).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn len(&mut self, n: usize) -> Result<(), SnapshotError> {
        let n = u32::try_from(n).map_err(|_| SnapshotError::Malformed("section too large"))?;
        self.u32(n);
        Ok(())
    }

    fn str(&mut self, s: &str) -> Result<(), SnapshotError> {
        self.len(s.len())?;
        self.buf.extend_from_slice(s.as_bytes());
        Ok(())
    }
}

fn enc_symbol(w: &mut Writer, s: &Symbol) -> Result<(), SnapshotError> {
    w.str(s.as_str())
}

fn enc_expr_vec(w: &mut Writer, items: &[Expr]) -> Result<(), SnapshotError> {
    w.len(items.len())?;
    for e in items {
        enc_expr(w, e)?;
    }
    Ok(())
}

fn enc_aref(w: &mut Writer, a: &ArrayRef) -> Result<(), SnapshotError> {
    enc_symbol(w, &a.array)?;
    enc_expr_vec(w, &a.subscripts)
}

fn enc_expr(w: &mut Writer, e: &Expr) -> Result<(), SnapshotError> {
    match e {
        Expr::Const(c) => {
            w.u8(0);
            w.i64(*c);
        }
        Expr::Var(s) => {
            w.u8(1);
            enc_symbol(w, s)?;
        }
        Expr::Add(a, b) => {
            w.u8(2);
            enc_expr(w, a)?;
            enc_expr(w, b)?;
        }
        Expr::Sub(a, b) => {
            w.u8(3);
            enc_expr(w, a)?;
            enc_expr(w, b)?;
        }
        Expr::Mul(a, b) => {
            w.u8(4);
            enc_expr(w, a)?;
            enc_expr(w, b)?;
        }
        Expr::FloorDiv(a, b) => {
            w.u8(5);
            enc_expr(w, a)?;
            enc_expr(w, b)?;
        }
        Expr::CeilDiv(a, b) => {
            w.u8(6);
            enc_expr(w, a)?;
            enc_expr(w, b)?;
        }
        Expr::Mod(a, b) => {
            w.u8(7);
            enc_expr(w, a)?;
            enc_expr(w, b)?;
        }
        Expr::Neg(a) => {
            w.u8(8);
            enc_expr(w, a)?;
        }
        Expr::Min(items) => {
            w.u8(9);
            enc_expr_vec(w, items)?;
        }
        Expr::Max(items) => {
            w.u8(10);
            enc_expr_vec(w, items)?;
        }
        Expr::Call(f, args) => {
            w.u8(11);
            enc_symbol(w, f)?;
            enc_expr_vec(w, args)?;
        }
        Expr::ArrayRead(a) => {
            w.u8(12);
            enc_aref(w, a)?;
        }
    }
    Ok(())
}

fn enc_target(w: &mut Writer, t: &Target) -> Result<(), SnapshotError> {
    match t {
        Target::Scalar(s) => {
            w.u8(0);
            enc_symbol(w, s)
        }
        Target::Array(a) => {
            w.u8(1);
            enc_aref(w, a)
        }
    }
}

fn enc_stmt(w: &mut Writer, s: &Stmt) -> Result<(), SnapshotError> {
    match s {
        Stmt::Assign { target, value } => {
            w.u8(0);
            enc_target(w, target)?;
            enc_expr(w, value)
        }
        Stmt::Guarded { cond, then } => {
            w.u8(1);
            enc_expr(w, cond)?;
            enc_stmt(w, then)
        }
    }
}

fn enc_stmt_vec(w: &mut Writer, items: &[Stmt]) -> Result<(), SnapshotError> {
    w.len(items.len())?;
    for s in items {
        enc_stmt(w, s)?;
    }
    Ok(())
}

fn enc_nest(w: &mut Writer, nest: &LoopNest) -> Result<(), SnapshotError> {
    w.len(nest.loops().len())?;
    for l in nest.loops() {
        enc_symbol(w, &l.var)?;
        enc_expr(w, &l.lower)?;
        enc_expr(w, &l.upper)?;
        enc_expr(w, &l.step)?;
        w.u8(match l.kind {
            LoopKind::Do => 0,
            LoopKind::ParDo => 1,
        });
    }
    enc_stmt_vec(w, nest.inits())?;
    enc_stmt_vec(w, nest.body())
}

fn dir_tag(d: Dir) -> u8 {
    match d {
        Dir::Pos => 0,
        Dir::Neg => 1,
        Dir::NonNeg => 2,
        Dir::NonPos => 3,
        Dir::NonZero => 4,
        Dir::Any => 5,
    }
}

fn enc_depvec(w: &mut Writer, v: &DepVector) -> Result<(), SnapshotError> {
    w.len(v.elems().len())?;
    for e in v.elems() {
        match e {
            DepElem::Dist(d) => {
                w.u8(0);
                w.i64(*d);
            }
            DepElem::Dir(d) => {
                w.u8(1);
                w.u8(dir_tag(*d));
            }
        }
    }
    Ok(())
}

fn enc_depset(w: &mut Writer, d: &DepSet) -> Result<(), SnapshotError> {
    w.len(d.len())?;
    for v in d.iter() {
        enc_depvec(w, v)?;
    }
    Ok(())
}

fn enc_matrix(w: &mut Writer, m: &IntMatrix) -> Result<(), SnapshotError> {
    w.len(m.rows())?;
    w.len(m.cols())?;
    for i in 0..m.rows() {
        for &cell in m.row(i) {
            w.i64(cell);
        }
    }
    Ok(())
}

fn enc_bool_vec(w: &mut Writer, v: &[bool]) -> Result<(), SnapshotError> {
    w.len(v.len())?;
    for &b in v {
        w.u8(u8::from(b));
    }
    Ok(())
}

fn enc_template(w: &mut Writer, t: &Template) -> Result<(), SnapshotError> {
    match t {
        Template::Unimodular { matrix } => {
            w.u8(0);
            enc_matrix(w, matrix)
        }
        Template::ReversePermute { rev, perm } => {
            w.u8(1);
            enc_bool_vec(w, rev)?;
            w.len(perm.len())?;
            for &p in perm.as_slice() {
                w.len(p)?;
            }
            Ok(())
        }
        Template::Parallelize { parflag } => {
            w.u8(2);
            enc_bool_vec(w, parflag)
        }
        Template::Block { n, i, j, bsize } => {
            w.u8(3);
            w.len(*n)?;
            w.len(*i)?;
            w.len(*j)?;
            enc_expr_vec(w, bsize)
        }
        Template::Coalesce { n, i, j } => {
            w.u8(4);
            w.len(*n)?;
            w.len(*i)?;
            w.len(*j)?;
            Ok(())
        }
        Template::Interleave { n, i, j, isize_ } => {
            w.u8(5);
            w.len(*n)?;
            w.len(*i)?;
            w.len(*j)?;
            enc_expr_vec(w, isize_)
        }
    }
}

/// Template names inside error payloads are stored as the matching
/// Table 1 tag — the only `&'static str`s that can appear there.
fn template_name_tag(name: &str) -> Result<u8, SnapshotError> {
    Ok(match name {
        "Unimodular" => 0,
        "ReversePermute" => 1,
        "Parallelize" => 2,
        "Block" => 3,
        "Coalesce" => 4,
        "Interleave" => 5,
        _ => return Err(SnapshotError::Malformed("unknown template name")),
    })
}

fn side_tag(s: BoundSide) -> u8 {
    match s {
        BoundSide::Lower => 0,
        BoundSide::Upper => 1,
        BoundSide::Step => 2,
    }
}

fn type_tag(t: ExprType) -> u8 {
    match t {
        ExprType::Const => 0,
        ExprType::Invar => 1,
        ExprType::Linear => 2,
        ExprType::Nonlinear => 3,
    }
}

fn enc_precond(w: &mut Writer, e: &PrecondError) -> Result<(), SnapshotError> {
    match e {
        PrecondError::DepthMismatch { expected, found } => {
            w.u8(0);
            w.len(*expected)?;
            w.len(*found)
        }
        PrecondError::TypeViolation {
            template,
            level,
            side,
            wrt,
            required,
            found,
        } => {
            w.u8(1);
            w.u8(template_name_tag(template)?);
            w.len(*level)?;
            w.u8(side_tag(*side));
            enc_symbol(w, wrt)?;
            w.u8(type_tag(*required));
            w.u8(type_tag(*found));
            Ok(())
        }
        PrecondError::NonConstStep { template, level } => {
            w.u8(2);
            w.u8(template_name_tag(template)?);
            w.len(*level)
        }
        PrecondError::SizeNotInvariant { template, pos, var } => {
            w.u8(3);
            w.u8(template_name_tag(template)?);
            w.len(*pos)?;
            enc_symbol(w, var)
        }
        PrecondError::ParallelLoop { level } => {
            w.u8(4);
            w.len(*level)
        }
    }
}

fn enc_fm(w: &mut Writer, e: &FmError) -> Result<(), SnapshotError> {
    match e {
        FmError::NotAffine { level, side } => {
            w.u8(0);
            w.len(*level)?;
            w.u8(side_tag(*side));
            Ok(())
        }
        FmError::NonConstStep { level } => {
            w.u8(1);
            w.len(*level)
        }
        FmError::CompositeOrigin { level } => {
            w.u8(2);
            w.len(*level)
        }
        FmError::Unbounded { level } => {
            w.u8(3);
            w.len(*level)
        }
    }
}

fn enc_unimodular(w: &mut Writer, e: &UnimodularError) -> Result<(), SnapshotError> {
    match e {
        UnimodularError::NotUnimodular => {
            w.u8(0);
            Ok(())
        }
        UnimodularError::DepthMismatch { expected, found } => {
            w.u8(1);
            w.len(*expected)?;
            w.len(*found)
        }
        UnimodularError::ParallelLoop { level } => {
            w.u8(2);
            w.len(*level)
        }
        UnimodularError::Fm(fm) => {
            w.u8(3);
            enc_fm(w, fm)
        }
    }
}

fn enc_apply(w: &mut Writer, e: &ApplyError) -> Result<(), SnapshotError> {
    match e {
        ApplyError::Precond(p) => {
            w.u8(0);
            enc_precond(w, p)
        }
        ApplyError::Unimodular(u) => {
            w.u8(1);
            enc_unimodular(w, u)
        }
    }
}

fn enc_reason(w: &mut Writer, r: &IllegalReason) -> Result<(), SnapshotError> {
    match r {
        IllegalReason::Dependences { witnesses } => {
            w.u8(0);
            w.len(witnesses.len())?;
            for v in witnesses {
                enc_depvec(w, v)?;
            }
            Ok(())
        }
        IllegalReason::Precondition { step, error } => {
            w.u8(1);
            w.u64(*step as u64);
            enc_precond(w, error)
        }
        IllegalReason::CodeGen { step, error } => {
            w.u8(2);
            w.u64(*step as u64);
            enc_apply(w, error)
        }
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A `u32` length prefix, sanity-bounded by the bytes actually left
    /// (every counted element consumes at least one byte), so corrupt
    /// counts cannot trigger huge preallocations.
    fn len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(SnapshotError::Truncated);
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<&'a str, SnapshotError> {
        let n = self.len()?;
        std::str::from_utf8(self.take(n)?)
            .map_err(|_| SnapshotError::Malformed("invalid UTF-8 in symbol"))
    }

    fn symbol(&mut self) -> Result<Symbol, SnapshotError> {
        Ok(Symbol::new(self.str()?))
    }

    fn bool_vec(&mut self) -> Result<Vec<bool>, SnapshotError> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(match self.u8()? {
                0 => false,
                1 => true,
                _ => return Err(SnapshotError::Malformed("bad boolean")),
            });
        }
        Ok(out)
    }
}

fn dec_expr_vec(r: &mut Reader<'_>, depth: usize) -> Result<Vec<Expr>, SnapshotError> {
    let n = r.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(dec_expr(r, depth)?);
    }
    Ok(out)
}

fn dec_aref(r: &mut Reader<'_>, depth: usize) -> Result<ArrayRef, SnapshotError> {
    let array = r.symbol()?;
    let subscripts = dec_expr_vec(r, depth)?;
    Ok(ArrayRef::new(array, subscripts))
}

fn dec_expr(r: &mut Reader<'_>, depth: usize) -> Result<Expr, SnapshotError> {
    if depth == 0 {
        return Err(SnapshotError::Malformed("expression nested too deeply"));
    }
    let depth = depth - 1;
    let bin = |r: &mut Reader<'_>| -> Result<(Box<Expr>, Box<Expr>), SnapshotError> {
        let a = dec_expr(r, depth)?;
        let b = dec_expr(r, depth)?;
        Ok((Box::new(a), Box::new(b)))
    };
    Ok(match r.u8()? {
        0 => Expr::Const(r.i64()?),
        1 => Expr::Var(r.symbol()?),
        2 => {
            let (a, b) = bin(r)?;
            Expr::Add(a, b)
        }
        3 => {
            let (a, b) = bin(r)?;
            Expr::Sub(a, b)
        }
        4 => {
            let (a, b) = bin(r)?;
            Expr::Mul(a, b)
        }
        5 => {
            let (a, b) = bin(r)?;
            Expr::FloorDiv(a, b)
        }
        6 => {
            let (a, b) = bin(r)?;
            Expr::CeilDiv(a, b)
        }
        7 => {
            let (a, b) = bin(r)?;
            Expr::Mod(a, b)
        }
        8 => Expr::Neg(Box::new(dec_expr(r, depth)?)),
        9 => Expr::Min(dec_expr_vec(r, depth)?),
        10 => Expr::Max(dec_expr_vec(r, depth)?),
        11 => {
            let f = r.symbol()?;
            Expr::Call(f, dec_expr_vec(r, depth)?)
        }
        12 => Expr::ArrayRead(dec_aref(r, depth)?),
        _ => return Err(SnapshotError::Malformed("bad expression tag")),
    })
}

fn dec_target(r: &mut Reader<'_>, depth: usize) -> Result<Target, SnapshotError> {
    Ok(match r.u8()? {
        0 => Target::Scalar(r.symbol()?),
        1 => Target::Array(dec_aref(r, depth)?),
        _ => return Err(SnapshotError::Malformed("bad target tag")),
    })
}

fn dec_stmt(r: &mut Reader<'_>, depth: usize) -> Result<Stmt, SnapshotError> {
    if depth == 0 {
        return Err(SnapshotError::Malformed("statement nested too deeply"));
    }
    let depth = depth - 1;
    Ok(match r.u8()? {
        0 => Stmt::Assign {
            target: dec_target(r, depth)?,
            value: dec_expr(r, depth)?,
        },
        1 => Stmt::Guarded {
            cond: dec_expr(r, depth)?,
            then: Box::new(dec_stmt(r, depth)?),
        },
        _ => return Err(SnapshotError::Malformed("bad statement tag")),
    })
}

fn dec_stmt_vec(r: &mut Reader<'_>) -> Result<Vec<Stmt>, SnapshotError> {
    let n = r.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(dec_stmt(r, MAX_DEPTH)?);
    }
    Ok(out)
}

fn dec_nest(r: &mut Reader<'_>) -> Result<LoopNest, SnapshotError> {
    let n = r.len()?;
    if n == 0 {
        return Err(SnapshotError::Malformed("empty loop nest"));
    }
    let mut loops = Vec::with_capacity(n);
    for _ in 0..n {
        let var = r.symbol()?;
        let lower = dec_expr(r, MAX_DEPTH)?;
        let upper = dec_expr(r, MAX_DEPTH)?;
        let step = dec_expr(r, MAX_DEPTH)?;
        let kind = match r.u8()? {
            0 => LoopKind::Do,
            1 => LoopKind::ParDo,
            _ => return Err(SnapshotError::Malformed("bad loop kind")),
        };
        loops.push(Loop {
            var,
            lower,
            upper,
            step,
            kind,
        });
    }
    let inits = dec_stmt_vec(r)?;
    let body = dec_stmt_vec(r)?;
    Ok(LoopNest::with_inits(loops, inits, body))
}

fn dec_dir(r: &mut Reader<'_>) -> Result<Dir, SnapshotError> {
    Ok(match r.u8()? {
        0 => Dir::Pos,
        1 => Dir::Neg,
        2 => Dir::NonNeg,
        3 => Dir::NonPos,
        4 => Dir::NonZero,
        5 => Dir::Any,
        _ => return Err(SnapshotError::Malformed("bad direction tag")),
    })
}

fn dec_depvec(r: &mut Reader<'_>) -> Result<DepVector, SnapshotError> {
    let n = r.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(match r.u8()? {
            0 => DepElem::Dist(r.i64()?),
            1 => DepElem::Dir(dec_dir(r)?),
            _ => return Err(SnapshotError::Malformed("bad dependence element tag")),
        });
    }
    Ok(DepVector::new(out))
}

fn dec_depset(r: &mut Reader<'_>) -> Result<DepSet, SnapshotError> {
    let n = r.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(dec_depvec(r)?);
    }
    DepSet::from_vectors(out).map_err(|_| SnapshotError::Malformed("mixed-arity dependence set"))
}

fn dec_matrix(r: &mut Reader<'_>) -> Result<IntMatrix, SnapshotError> {
    let rows = r.len()?;
    let cols = r.len()?;
    if rows == 0 || cols == 0 {
        return Err(SnapshotError::Malformed("empty matrix"));
    }
    let mut data = Vec::with_capacity(rows);
    for _ in 0..rows {
        let mut row = Vec::with_capacity(cols);
        for _ in 0..cols {
            row.push(r.i64()?);
        }
        data.push(row);
    }
    let refs: Vec<&[i64]> = data.iter().map(|row| row.as_slice()).collect();
    Ok(IntMatrix::from_rows(&refs))
}

fn dec_template(r: &mut Reader<'_>) -> Result<Template, SnapshotError> {
    let bad = |_| SnapshotError::Malformed("invalid template parameters");
    Ok(match r.u8()? {
        0 => Template::unimodular(dec_matrix(r)?).map_err(bad)?,
        1 => {
            let rev = r.bool_vec()?;
            let n = r.len()?;
            let mut perm = Vec::with_capacity(n);
            for _ in 0..n {
                perm.push(r.u32()? as usize);
            }
            Template::reverse_permute(rev, perm).map_err(bad)?
        }
        2 => Template::parallelize(r.bool_vec()?),
        3 => {
            let (n, i, j) = (r.u32()? as usize, r.u32()? as usize, r.u32()? as usize);
            Template::block(n, i, j, dec_expr_vec(r, MAX_DEPTH)?).map_err(bad)?
        }
        4 => {
            let (n, i, j) = (r.u32()? as usize, r.u32()? as usize, r.u32()? as usize);
            Template::coalesce(n, i, j).map_err(bad)?
        }
        5 => {
            let (n, i, j) = (r.u32()? as usize, r.u32()? as usize, r.u32()? as usize);
            Template::interleave(n, i, j, dec_expr_vec(r, MAX_DEPTH)?).map_err(bad)?
        }
        _ => return Err(SnapshotError::Malformed("bad template tag")),
    })
}

fn dec_template_name(r: &mut Reader<'_>) -> Result<&'static str, SnapshotError> {
    Ok(match r.u8()? {
        0 => "Unimodular",
        1 => "ReversePermute",
        2 => "Parallelize",
        3 => "Block",
        4 => "Coalesce",
        5 => "Interleave",
        _ => return Err(SnapshotError::Malformed("bad template name tag")),
    })
}

fn dec_side(r: &mut Reader<'_>) -> Result<BoundSide, SnapshotError> {
    Ok(match r.u8()? {
        0 => BoundSide::Lower,
        1 => BoundSide::Upper,
        2 => BoundSide::Step,
        _ => return Err(SnapshotError::Malformed("bad bound side tag")),
    })
}

fn dec_type(r: &mut Reader<'_>) -> Result<ExprType, SnapshotError> {
    Ok(match r.u8()? {
        0 => ExprType::Const,
        1 => ExprType::Invar,
        2 => ExprType::Linear,
        3 => ExprType::Nonlinear,
        _ => return Err(SnapshotError::Malformed("bad expression type tag")),
    })
}

fn dec_precond(r: &mut Reader<'_>) -> Result<PrecondError, SnapshotError> {
    Ok(match r.u8()? {
        0 => PrecondError::DepthMismatch {
            expected: r.u32()? as usize,
            found: r.u32()? as usize,
        },
        1 => PrecondError::TypeViolation {
            template: dec_template_name(r)?,
            level: r.u32()? as usize,
            side: dec_side(r)?,
            wrt: r.symbol()?,
            required: dec_type(r)?,
            found: dec_type(r)?,
        },
        2 => PrecondError::NonConstStep {
            template: dec_template_name(r)?,
            level: r.u32()? as usize,
        },
        3 => PrecondError::SizeNotInvariant {
            template: dec_template_name(r)?,
            pos: r.u32()? as usize,
            var: r.symbol()?,
        },
        4 => PrecondError::ParallelLoop {
            level: r.u32()? as usize,
        },
        _ => return Err(SnapshotError::Malformed("bad precondition tag")),
    })
}

fn dec_fm(r: &mut Reader<'_>) -> Result<FmError, SnapshotError> {
    Ok(match r.u8()? {
        0 => FmError::NotAffine {
            level: r.u32()? as usize,
            side: dec_side(r)?,
        },
        1 => FmError::NonConstStep {
            level: r.u32()? as usize,
        },
        2 => FmError::CompositeOrigin {
            level: r.u32()? as usize,
        },
        3 => FmError::Unbounded {
            level: r.u32()? as usize,
        },
        _ => return Err(SnapshotError::Malformed("bad FM error tag")),
    })
}

fn dec_unimodular(r: &mut Reader<'_>) -> Result<UnimodularError, SnapshotError> {
    Ok(match r.u8()? {
        0 => UnimodularError::NotUnimodular,
        1 => UnimodularError::DepthMismatch {
            expected: r.u32()? as usize,
            found: r.u32()? as usize,
        },
        2 => UnimodularError::ParallelLoop {
            level: r.u32()? as usize,
        },
        3 => UnimodularError::Fm(dec_fm(r)?),
        _ => return Err(SnapshotError::Malformed("bad unimodular error tag")),
    })
}

fn dec_apply(r: &mut Reader<'_>) -> Result<ApplyError, SnapshotError> {
    Ok(match r.u8()? {
        0 => ApplyError::Precond(dec_precond(r)?),
        1 => ApplyError::Unimodular(dec_unimodular(r)?),
        _ => return Err(SnapshotError::Malformed("bad apply error tag")),
    })
}

fn dec_reason(r: &mut Reader<'_>) -> Result<IllegalReason, SnapshotError> {
    Ok(match r.u8()? {
        0 => {
            let n = r.len()?;
            let mut witnesses = Vec::with_capacity(n);
            for _ in 0..n {
                witnesses.push(dec_depvec(r)?);
            }
            IllegalReason::Dependences { witnesses }
        }
        1 => IllegalReason::Precondition {
            step: r.u64()? as usize,
            error: dec_precond(r)?,
        },
        2 => IllegalReason::CodeGen {
            step: r.u64()? as usize,
            error: dec_apply(r)?,
        },
        _ => return Err(SnapshotError::Malformed("bad illegal-reason tag")),
    })
}

// ---------------------------------------------------------------------
// Decoded payload (validated before the cache is touched)
// ---------------------------------------------------------------------

struct DecodedEntry {
    prune: bool,
    shape: u32,
    mapped: u32,
    template: u32,
    outcome: DecodedOutcome,
}

enum DecodedOutcome {
    Legal {
        prune: bool,
        shape: u32,
        mapped: u32,
    },
    Illegal(IllegalReason),
}

struct DecodedPayload {
    shapes: Vec<LoopNest>,
    deps: Vec<DepSet>,
    templates: Vec<Template>,
    entries: Vec<DecodedEntry>,
}

fn dec_prune(r: &mut Reader<'_>) -> Result<bool, SnapshotError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(SnapshotError::Malformed("bad prune flag")),
    }
}

fn decode_payload(payload: &[u8]) -> Result<DecodedPayload, SnapshotError> {
    let mut r = Reader::new(payload);
    let n_shapes = r.len()?;
    let mut shapes = Vec::with_capacity(n_shapes);
    for _ in 0..n_shapes {
        shapes.push(dec_nest(&mut r)?);
    }
    let n_deps = r.len()?;
    let mut deps = Vec::with_capacity(n_deps);
    for _ in 0..n_deps {
        deps.push(dec_depset(&mut r)?);
    }
    let n_templates = r.len()?;
    let mut templates = Vec::with_capacity(n_templates);
    for _ in 0..n_templates {
        templates.push(dec_template(&mut r)?);
    }
    let n_entries = r.len()?;
    let mut entries = Vec::with_capacity(n_entries);
    let check_ids = |shape: u32, mapped: u32| -> Result<(), SnapshotError> {
        if shape as usize >= n_shapes || mapped as usize >= n_deps {
            return Err(SnapshotError::Malformed("entry references missing pool id"));
        }
        Ok(())
    };
    for _ in 0..n_entries {
        let prune = dec_prune(&mut r)?;
        let (shape, mapped, template) = (r.u32()?, r.u32()?, r.u32()?);
        check_ids(shape, mapped)?;
        if template as usize >= n_templates {
            return Err(SnapshotError::Malformed("entry references missing pool id"));
        }
        let outcome = match r.u8()? {
            0 => {
                let child_prune = dec_prune(&mut r)?;
                let (cs, cm) = (r.u32()?, r.u32()?);
                check_ids(cs, cm)?;
                DecodedOutcome::Legal {
                    prune: child_prune,
                    shape: cs,
                    mapped: cm,
                }
            }
            1 => DecodedOutcome::Illegal(dec_reason(&mut r)?),
            _ => return Err(SnapshotError::Malformed("bad outcome tag")),
        };
        entries.push(DecodedEntry {
            prune,
            shape,
            mapped,
            template,
            outcome,
        });
    }
    if r.remaining() != 0 {
        return Err(SnapshotError::Malformed("trailing bytes after entries"));
    }
    Ok(DecodedPayload {
        shapes,
        deps,
        templates,
        entries,
    })
}

// ---------------------------------------------------------------------
// SharedLegalityCache integration
// ---------------------------------------------------------------------

impl SharedLegalityCache {
    /// Serializes the resident entries and interner pools to an
    /// `irlt-cache/v1` artifact.
    ///
    /// The output is deterministic for a given cache content (pools in id
    /// order, entries sorted by key ids), so saving an unchanged cache
    /// twice yields identical bytes.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::UnsupportedKeyMode`] in `Display` mode (legacy
    /// string keys have no interned pools to serialize).
    pub fn save_snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        if self.key_mode() != KeyMode::Fingerprint {
            return Err(SnapshotError::UnsupportedKeyMode);
        }
        // Collect entries as plain id tuples, then sort for determinism
        // (shard iteration order is unspecified). Entries MUST be
        // collected before the pools are copied: pools are append-only,
        // so every id an already-inserted entry references exists in any
        // later pool copy — whereas copying the pools first would let an
        // insert racing the save deposit an entry whose ids point past
        // the copied pools, producing a snapshot that fails validation
        // on load (the tear `tests/rotation.rs` races for). Pool values
        // interned after the entry sweep ride along unused; the loader
        // re-interns them in id order, so save→load→save stays a byte
        // fixpoint.
        let mut entries: Vec<(bool, u32, u32, u32, DecodedOutcome)> = Vec::new();
        self.for_each_entry(|key, entry| {
            let &ProbeKey::Fp {
                prune,
                shape,
                mapped,
                template,
            } = key
            else {
                return; // unreachable in fingerprint mode
            };
            let outcome = match &entry.outcome {
                CachedOutcome::Legal {
                    key:
                        StateKey::Fp {
                            prune,
                            shape,
                            mapped,
                        },
                    ..
                } => DecodedOutcome::Legal {
                    prune: *prune,
                    shape: *shape,
                    mapped: *mapped,
                },
                CachedOutcome::Legal { .. } => return, // unreachable in fingerprint mode
                CachedOutcome::Illegal(reason) => DecodedOutcome::Illegal(reason.clone()),
            };
            entries.push((prune, shape, mapped, template, outcome));
        });
        entries
            .sort_by_key(|&(prune, shape, mapped, template, _)| (prune, shape, mapped, template));

        // Copy the pools out (cheap Arc bumps) so no lock is held while
        // encoding.
        let (shapes, deps, templates) = {
            let pools = self.lock_pools();
            let shapes: Vec<Arc<LoopNest>> = (0..pools.shapes.len() as u32)
                .map(|i| pools.shapes.get(i).clone())
                .collect();
            let deps: Vec<Arc<DepSet>> = (0..pools.deps.len() as u32)
                .map(|i| pools.deps.get(i).clone())
                .collect();
            let templates: Vec<Arc<Template>> = (0..pools.templates.len() as u32)
                .map(|i| pools.templates.get(i).clone())
                .collect();
            (shapes, deps, templates)
        };

        let mut w = Writer::new();
        w.len(shapes.len())?;
        for s in &shapes {
            enc_nest(&mut w, s)?;
        }
        w.len(deps.len())?;
        for d in &deps {
            enc_depset(&mut w, d)?;
        }
        w.len(templates.len())?;
        for t in &templates {
            enc_template(&mut w, t)?;
        }
        w.len(entries.len())?;
        for (prune, shape, mapped, template, outcome) in &entries {
            w.u8(u8::from(*prune));
            w.u32(*shape);
            w.u32(*mapped);
            w.u32(*template);
            match outcome {
                DecodedOutcome::Legal {
                    prune,
                    shape,
                    mapped,
                } => {
                    w.u8(0);
                    w.u8(u8::from(*prune));
                    w.u32(*shape);
                    w.u32(*mapped);
                }
                DecodedOutcome::Illegal(reason) => {
                    w.u8(1);
                    enc_reason(&mut w, reason)?;
                }
            }
        }

        let payload = w.buf;
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        Ok(out)
    }

    /// Restores a snapshot produced by
    /// [`save_snapshot`](SharedLegalityCache::save_snapshot): re-interns
    /// every pooled value (recomputing fingerprints under this build) and
    /// inserts the entries under [`Self::SNAPSHOT_OWNER`], skipping any
    /// whose shard is full.
    ///
    /// The whole payload is decoded and validated **before** the cache is
    /// touched; on any error the cache is exactly as it was (a clean cold
    /// start). Loading into a non-empty cache is supported — ids are
    /// remapped through the interners, so snapshot values unify with live
    /// ones.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`]: wrong magic/version, truncation, checksum
    /// mismatch, structurally invalid payload, or a `Display`-mode cache.
    pub fn load_snapshot(&self, bytes: &[u8]) -> Result<SnapshotLoadStats, SnapshotError> {
        if self.key_mode() != KeyMode::Fingerprint {
            return Err(SnapshotError::UnsupportedKeyMode);
        }
        if bytes.len() < HEADER_LEN {
            return if bytes.len() >= SNAPSHOT_MAGIC.len()
                && &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC
            {
                Err(SnapshotError::BadMagic)
            } else {
                Err(SnapshotError::Truncated)
            };
        }
        if &bytes[..10] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u16::from_le_bytes(bytes[10..12].try_into().unwrap());
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion { found: version });
        }
        let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
        let expected = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
        let body = &bytes[HEADER_LEN..];
        if (body.len() as u64) < payload_len {
            return Err(SnapshotError::Truncated);
        }
        if (body.len() as u64) > payload_len {
            return Err(SnapshotError::Malformed("trailing bytes after payload"));
        }
        let found = fnv1a64(body);
        if found != expected {
            return Err(SnapshotError::BadChecksum { expected, found });
        }
        let decoded = decode_payload(body)?;

        // Everything validated — now touch the cache: re-intern the pools
        // (old id → new id, new canonical Arcs) …
        let (shape_map, shape_arcs, dep_map, dep_arcs, template_map) = {
            let mut pools = self.lock_pools();
            let mut shape_map = Vec::with_capacity(decoded.shapes.len());
            let mut shape_arcs = Vec::with_capacity(decoded.shapes.len());
            for nest in decoded.shapes {
                let interned = pools.shapes.intern(nest);
                shape_map.push(interned.id);
                shape_arcs.push(interned.value);
            }
            let mut dep_map = Vec::with_capacity(decoded.deps.len());
            let mut dep_arcs = Vec::with_capacity(decoded.deps.len());
            for set in decoded.deps {
                let interned = pools.deps.intern(set);
                dep_map.push(interned.id);
                dep_arcs.push(interned.value);
            }
            let mut template_map = Vec::with_capacity(decoded.templates.len());
            for t in decoded.templates {
                template_map.push(pools.templates.intern(t).id);
            }
            (shape_map, shape_arcs, dep_map, dep_arcs, template_map)
        };

        // … then replay the entries under the remapped ids.
        let mut stats = SnapshotLoadStats {
            shapes: shape_map.len() as u64,
            deps: dep_map.len() as u64,
            templates: template_map.len() as u64,
            ..SnapshotLoadStats::default()
        };
        for entry in decoded.entries {
            let probe = ProbeKey::Fp {
                prune: entry.prune,
                shape: shape_map[entry.shape as usize],
                mapped: dep_map[entry.mapped as usize],
                template: template_map[entry.template as usize],
            };
            let outcome = match entry.outcome {
                DecodedOutcome::Legal {
                    prune,
                    shape,
                    mapped,
                } => CachedOutcome::Legal {
                    shape: shape_arcs[shape as usize].clone(),
                    mapped: dep_arcs[mapped as usize].clone(),
                    key: StateKey::Fp {
                        prune,
                        shape: shape_map[shape as usize],
                        mapped: dep_map[mapped as usize],
                    },
                },
                DecodedOutcome::Illegal(reason) => CachedOutcome::Illegal(reason),
            };
            if self.load_entry(probe, outcome) {
                stats.entries_loaded += 1;
            } else {
                stats.entries_skipped += 1;
            }
        }
        Ok(stats)
    }

    /// Atomically persists the cache to `path`, rotating previous
    /// generations — the snapshot hook long-lived services use between
    /// requests (one-shot batches can keep writing the file directly).
    ///
    /// The write is **tear-free**: bytes go to a sibling temporary file
    /// (`<path>.new`), are fsynced, and only then renamed over `path`
    /// (`rename(2)` is atomic within a filesystem). A reader — including
    /// a process that crashed mid-save and restarted — therefore only
    /// ever observes either the previous complete snapshot or the new
    /// complete snapshot, never a prefix.
    ///
    /// Before the rename, up to `keep_generations` prior snapshots are
    /// shifted to `<path>.1` (newest) … `<path>.N` (oldest), each by the
    /// same atomic rename; the oldest falls off the end. `0` keeps no
    /// history — `path` is simply replaced. Concurrent savers in one
    /// process should serialize (the serve loop holds a rotation lock);
    /// cross-process savers are last-writer-wins but still never tear.
    pub fn save_snapshot_to(
        &self,
        path: &Path,
        keep_generations: usize,
    ) -> Result<SnapshotWriteStats, SnapshotSaveError> {
        let bytes = self.save_snapshot().map_err(SnapshotSaveError::Encode)?;
        let io = |p: &Path| {
            let p = p.to_path_buf();
            move |e: std::io::Error| SnapshotSaveError::Io(p, e)
        };
        let tmp = generation_path(path, 0).with_extension("new");
        {
            let mut f = std::fs::File::create(&tmp).map_err(io(&tmp))?;
            use std::io::Write as _;
            f.write_all(&bytes).map_err(io(&tmp))?;
            // Flush to stable storage before any rename makes the file
            // visible under its final name.
            f.sync_all().map_err(io(&tmp))?;
        }
        let mut rotated = 0;
        for k in (1..=keep_generations).rev() {
            let from = generation_path(path, k - 1);
            let to = generation_path(path, k);
            match std::fs::rename(&from, &to) {
                Ok(()) => rotated += 1,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(SnapshotSaveError::Io(from, e)),
            }
        }
        std::fs::rename(&tmp, path).map_err(io(&tmp))?;
        Ok(SnapshotWriteStats {
            bytes: bytes.len() as u64,
            entries: self.len() as u64,
            generations_rotated: rotated,
        })
    }
}

/// The on-disk name of generation `k` of a snapshot at `path`:
/// generation `0` is `path` itself, generation `k > 0` is `path.k`.
pub fn generation_path(path: &Path, k: usize) -> std::path::PathBuf {
    if k == 0 {
        path.to_path_buf()
    } else {
        let mut name = path.as_os_str().to_os_string();
        name.push(format!(".{k}"));
        std::path::PathBuf::from(name)
    }
}

/// What [`SharedLegalityCache::save_snapshot_to`] wrote.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotWriteStats {
    /// Size of the snapshot artifact in bytes.
    pub bytes: u64,
    /// Cache entries resident when the snapshot was encoded.
    pub entries: u64,
    /// Prior generations shifted during rotation.
    pub generations_rotated: usize,
}

/// Why an atomic snapshot save failed. Either way nothing was renamed
/// over a previous snapshot — on-disk generations are intact.
#[derive(Debug)]
pub enum SnapshotSaveError {
    /// The cache could not be encoded (e.g. `Display` key mode).
    Encode(SnapshotError),
    /// A filesystem operation failed at the given path.
    Io(std::path::PathBuf, std::io::Error),
}

impl fmt::Display for SnapshotSaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotSaveError::Encode(e) => write!(f, "encoding snapshot: {e}"),
            SnapshotSaveError::Io(p, e) => write!(f, "{}: {e}", p.display()),
        }
    }
}

impl std::error::Error for SnapshotSaveError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::SeqState;
    use irlt_ir::parse_nest;

    fn stencil() -> (LoopNest, DepSet) {
        let nest = parse_nest(
            "do i = 2, n - 1\n do j = 2, n - 1\n  a(i, j) = a(i - 1, j) + a(i, j - 1)\n enddo\nenddo",
        )
        .unwrap();
        (nest, DepSet::from_distances(&[&[1, 0], &[0, 1]]))
    }

    /// Populates a cache with legal and illegal outcomes across two
    /// chains.
    fn warm_cache(cache: &SharedLegalityCache) {
        let (nest, deps) = stencil();
        let s = SeqState::root(&nest, &deps).with_shared(cache.clone(), 0);
        let skew = Template::unimodular(irlt_unimodular::IntMatrix::skew(2, 0, 1, 1)).unwrap();
        let swap = Template::unimodular(irlt_unimodular::IntMatrix::interchange(2, 0, 1)).unwrap();
        let child = s.extend(skew).unwrap();
        child.extend(swap).unwrap();
        // An illegal outcome too: reversal against (1,-1).
        let neg = DepSet::from_distances(&[&[1, -1]]);
        let s2 = SeqState::root(&nest, &neg).with_shared(cache.clone(), 0);
        s2.extend(Template::reverse_permute(vec![false, false], vec![1, 0]).unwrap())
            .unwrap_err();
        // A legal parallelize, then a transform on the ParDo loop —
        // exercises the precondition/codegen error encodings.
        let inner = DepSet::from_distances(&[&[0, 1]]);
        let s3 = SeqState::root(&nest, &inner)
            .with_shared(cache.clone(), 0)
            .extend(Template::parallelize(vec![true, false]))
            .unwrap();
        s3.extend(Template::unimodular(irlt_unimodular::IntMatrix::interchange(2, 0, 1)).unwrap())
            .unwrap_err();
    }

    #[test]
    fn round_trip_restores_entries_and_serves_hits() {
        let cache = SharedLegalityCache::with_shards(1 << 12, 4);
        warm_cache(&cache);
        let entries_before = cache.len();
        assert!(entries_before >= 4);
        let bytes = cache.save_snapshot().unwrap();

        let warm = SharedLegalityCache::with_shards(1 << 12, 16);
        let loaded = warm.load_snapshot(&bytes).unwrap();
        assert_eq!(loaded.entries_loaded as usize, entries_before);
        assert_eq!(loaded.entries_skipped, 0);
        assert_eq!(warm.len(), entries_before);
        assert_eq!(warm.stats().snapshot_entries as usize, entries_before);

        // The warmed cache replays the same outcomes — every probe hits.
        let (nest, deps) = stencil();
        let skew = Template::unimodular(irlt_unimodular::IntMatrix::skew(2, 0, 1, 1)).unwrap();
        let swap = Template::unimodular(irlt_unimodular::IntMatrix::interchange(2, 0, 1)).unwrap();
        let fresh_child = SeqState::root(&nest, &deps).extend(skew.clone()).unwrap();
        let warm_child = SeqState::root(&nest, &deps)
            .with_shared(warm.clone(), 7)
            .extend(skew)
            .unwrap();
        assert_eq!(warm_child.mapped_deps(), fresh_child.mapped_deps());
        assert_eq!(warm_child.shape(), fresh_child.shape());
        let fresh_grand = fresh_child.extend(swap.clone()).unwrap();
        let warm_grand = warm_child.extend(swap).unwrap();
        assert_eq!(warm_grand.mapped_deps(), fresh_grand.mapped_deps());
        assert_eq!(warm_grand.shape(), fresh_grand.shape());

        // Illegal outcomes replay with identical rendered reasons.
        let neg = DepSet::from_distances(&[&[1, -1]]);
        let rp = Template::reverse_permute(vec![false, false], vec![1, 0]).unwrap();
        let fresh_err = SeqState::root(&nest, &neg).extend(rp.clone()).unwrap_err();
        let warm_err = SeqState::root(&nest, &neg)
            .with_shared(warm.clone(), 7)
            .extend(rp)
            .unwrap_err();
        assert_eq!(format!("{warm_err}"), format!("{fresh_err}"));

        let stats = warm.stats();
        assert!(stats.snapshot_hits >= 3, "{stats}");
        assert_eq!(stats.misses, 0, "warm start should not miss: {stats}");
    }

    #[test]
    fn snapshot_bytes_are_deterministic() {
        let a = SharedLegalityCache::with_shards(1 << 12, 4);
        let b = SharedLegalityCache::with_shards(1 << 12, 8);
        warm_cache(&a);
        warm_cache(&b);
        let ba = a.save_snapshot().unwrap();
        assert_eq!(ba, a.save_snapshot().unwrap(), "same cache, same bytes");
        assert_eq!(
            ba,
            b.save_snapshot().unwrap(),
            "same content, different shard layout, same bytes"
        );
        // Save → load → save is a fixpoint.
        let c = SharedLegalityCache::with_shards(1 << 12, 2);
        c.load_snapshot(&ba).unwrap();
        assert_eq!(c.save_snapshot().unwrap(), ba);
    }

    #[test]
    fn save_snapshot_to_rotates_generations_atomically() {
        let dir = std::env::temp_dir().join(format!("irlt-snap-rotate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("cache.bin");

        let cache = SharedLegalityCache::with_shards(1 << 12, 4);
        warm_cache(&cache);
        let first = cache.save_snapshot_to(&base, 2).unwrap();
        assert!(first.bytes > 0);
        assert_eq!(first.entries as usize, cache.len());
        assert_eq!(first.generations_rotated, 0, "nothing to rotate yet");
        assert_eq!(generation_path(&base, 0), base);
        assert_eq!(
            generation_path(&base, 1),
            dir.join("cache.bin.1"),
            "generation suffix appends, never replaces the extension"
        );
        let gen0 = std::fs::read(&base).unwrap();
        assert_eq!(gen0, cache.save_snapshot().unwrap());

        // Second save: previous snapshot shifts to .1.
        let second = cache.save_snapshot_to(&base, 2).unwrap();
        assert_eq!(second.generations_rotated, 1);
        assert_eq!(std::fs::read(generation_path(&base, 1)).unwrap(), gen0);

        // Third and fourth: .1 -> .2, and the cap holds (no .3 ever).
        cache.save_snapshot_to(&base, 2).unwrap();
        cache.save_snapshot_to(&base, 2).unwrap();
        assert!(generation_path(&base, 1).is_file());
        assert!(generation_path(&base, 2).is_file());
        assert!(!generation_path(&base, 3).exists(), "cap exceeded");
        // No temporary file survives a completed save.
        assert!(!base.with_extension("new").exists());

        // Every retained generation is a complete, loadable snapshot.
        for k in 0..=2 {
            let bytes = std::fs::read(generation_path(&base, k)).unwrap();
            let fresh = SharedLegalityCache::new();
            let loaded = fresh.load_snapshot(&bytes).unwrap();
            assert!(loaded.entries_loaded > 0, "generation {k} torn");
        }

        // keep_generations = 0 replaces in place without history shift.
        let lone = dir.join("lone.bin");
        cache.save_snapshot_to(&lone, 0).unwrap();
        cache.save_snapshot_to(&lone, 0).unwrap();
        assert!(lone.is_file());
        assert!(!generation_path(&lone, 1).exists());

        // Display-mode caches fail with the typed encode error.
        let display = SharedLegalityCache::with_capacity_and_mode(1 << 12, KeyMode::Display);
        let err = display.save_snapshot_to(&base, 2).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotSaveError::Encode(SnapshotError::UnsupportedKeyMode)
            ),
            "{err}"
        );
        // A failed save never disturbs the generations on disk.
        assert_eq!(std::fs::read(&base).unwrap(), gen0);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loads_into_a_non_empty_cache() {
        let donor = SharedLegalityCache::with_shards(1 << 12, 4);
        warm_cache(&donor);
        let bytes = donor.save_snapshot().unwrap();

        // The target already computed one of the same subproblems plus a
        // different one.
        let target = SharedLegalityCache::with_shards(1 << 12, 4);
        let (nest, deps) = stencil();
        let skew = Template::unimodular(irlt_unimodular::IntMatrix::skew(2, 0, 1, 1)).unwrap();
        SeqState::root(&nest, &deps)
            .with_shared(target.clone(), 3)
            .extend(skew)
            .unwrap();
        let own = target.len();
        let loaded = target.load_snapshot(&bytes).unwrap();
        // The overlapping entry is skipped (slot occupied), the rest load.
        assert_eq!(loaded.entries_skipped, 1);
        assert_eq!(
            target.len(),
            own + loaded.entries_loaded as usize,
            "loaded entries add to the live ones"
        );
        // Replays still agree with fresh computation after the merge.
        let swap = Template::unimodular(irlt_unimodular::IntMatrix::interchange(2, 0, 1)).unwrap();
        let fresh = SeqState::root(&nest, &deps)
            .extend(Template::unimodular(irlt_unimodular::IntMatrix::skew(2, 0, 1, 1)).unwrap())
            .unwrap()
            .extend(swap.clone())
            .unwrap();
        let merged = SeqState::root(&nest, &deps)
            .with_shared(target.clone(), 9)
            .extend(Template::unimodular(irlt_unimodular::IntMatrix::skew(2, 0, 1, 1)).unwrap())
            .unwrap()
            .extend(swap)
            .unwrap();
        assert_eq!(merged.mapped_deps(), fresh.mapped_deps());
        assert_eq!(merged.shape(), fresh.shape());
    }

    #[test]
    fn rejects_truncation_at_every_prefix() {
        let cache = SharedLegalityCache::with_shards(1 << 12, 4);
        warm_cache(&cache);
        let bytes = cache.save_snapshot().unwrap();
        for cut in 0..bytes.len() {
            let fresh = SharedLegalityCache::new();
            let err = fresh
                .load_snapshot(&bytes[..cut])
                .expect_err("truncated snapshot must be rejected");
            // Whatever the specific error, the cache stays cold.
            let _ = err.to_string();
            assert!(fresh.is_empty(), "cache touched at cut {cut}");
            assert_eq!(fresh.stats().snapshot_entries, 0);
        }
    }

    #[test]
    fn rejects_corruption_wrong_version_and_garbage() {
        let cache = SharedLegalityCache::with_shards(1 << 12, 4);
        warm_cache(&cache);
        let bytes = cache.save_snapshot().unwrap();

        // Flip one payload byte: checksum must catch it.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xff;
        assert!(matches!(
            SharedLegalityCache::new().load_snapshot(&corrupt),
            Err(SnapshotError::BadChecksum { .. })
        ));

        // Flip a checksum byte.
        let mut badsum = bytes.clone();
        badsum[20] ^= 0x01;
        assert!(matches!(
            SharedLegalityCache::new().load_snapshot(&badsum),
            Err(SnapshotError::BadChecksum { .. })
        ));

        // Wrong version.
        let mut badver = bytes.clone();
        badver[10] = 0x63;
        assert!(matches!(
            SharedLegalityCache::new().load_snapshot(&badver),
            Err(SnapshotError::BadVersion { found: 0x63 })
        ));

        // Wrong magic.
        let mut badmagic = bytes.clone();
        badmagic[0] = b'X';
        assert!(matches!(
            SharedLegalityCache::new().load_snapshot(&badmagic),
            Err(SnapshotError::BadMagic)
        ));

        // Garbage of various lengths — never a panic, never a load.
        let mut x = 0x2545f4914f6cdd1du64;
        for len in [0usize, 1, 9, 27, 28, 64, 4096] {
            let mut garbage = Vec::with_capacity(len);
            for _ in 0..len {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                garbage.push(x as u8);
            }
            let fresh = SharedLegalityCache::new();
            assert!(fresh.load_snapshot(&garbage).is_err(), "len {len}");
            assert!(fresh.is_empty());
        }

        // A syntactically valid header whose payload is garbage decodes
        // cleanly past the checksum, then fails structurally.
        let mut forged = Vec::new();
        let payload = vec![0xffu8; 32];
        forged.extend_from_slice(SNAPSHOT_MAGIC);
        forged.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        forged.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        forged.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        forged.extend_from_slice(&payload);
        let fresh = SharedLegalityCache::new();
        assert!(matches!(
            fresh.load_snapshot(&forged),
            Err(SnapshotError::Truncated) | Err(SnapshotError::Malformed(_))
        ));
        assert!(fresh.is_empty());
    }

    #[test]
    fn display_mode_has_no_snapshots() {
        let cache = SharedLegalityCache::with_capacity_and_mode(1 << 12, KeyMode::Display);
        assert_eq!(
            cache.save_snapshot(),
            Err(SnapshotError::UnsupportedKeyMode)
        );
        let fp = SharedLegalityCache::new();
        warm_cache(&fp);
        let bytes = fp.save_snapshot().unwrap();
        assert_eq!(
            cache.load_snapshot(&bytes),
            Err(SnapshotError::UnsupportedKeyMode)
        );
    }

    #[test]
    fn capacity_full_shards_skip_rather_than_evict() {
        let donor = SharedLegalityCache::with_shards(1 << 12, 1);
        warm_cache(&donor);
        let bytes = donor.save_snapshot().unwrap();
        // A single shard of capacity 2: at most 2 entries load, the rest
        // are skipped, and nothing already resident is evicted.
        let tiny = SharedLegalityCache::with_shards(2, 1);
        let loaded = tiny.load_snapshot(&bytes).unwrap();
        assert_eq!(loaded.entries_loaded, 2);
        assert!(loaded.entries_skipped >= 2);
        assert_eq!(tiny.stats().evictions, 0);
    }

    #[test]
    fn errors_render() {
        for e in [
            SnapshotError::UnsupportedKeyMode,
            SnapshotError::Truncated,
            SnapshotError::BadMagic,
            SnapshotError::BadVersion { found: 9 },
            SnapshotError::BadChecksum {
                expected: 1,
                found: 2,
            },
            SnapshotError::Malformed("x"),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
