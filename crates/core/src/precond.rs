//! Loop-bounds preconditions (the first column of Tables 3 and 4).
//!
//! "A transformation may be applied to a given loop nest only if these
//! expressions satisfy the preconditions for applying this transformation."
//! The preconditions are lattice predicates `type(expr, x) ⊑ V` over the
//! bound-expression types of §4.1; unlike the dependence test, they must
//! hold **for each individual template instantiation** in a sequence.

use crate::template::Template;
use irlt_ir::{classify, classify_bound, BoundSide, Expr, ExprType, LoopNest, Symbol};
use std::fmt;

/// A violated precondition (or structural mismatch).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PrecondError {
    /// The template's `n` differs from the nest depth.
    DepthMismatch {
        /// Template input size.
        expected: usize,
        /// Nest depth.
        found: usize,
    },
    /// A `type(expr, x) ⊑ V` predicate failed.
    TypeViolation {
        /// Template name.
        template: &'static str,
        /// 0-based level whose bound is at fault.
        level: usize,
        /// Which bound.
        side: BoundSide,
        /// The variable the type was taken with respect to.
        wrt: Symbol,
        /// The lattice bound required by the table.
        required: ExprType,
        /// The actual type.
        found: ExprType,
    },
    /// A step that must be a compile-time constant is not.
    NonConstStep {
        /// Template name.
        template: &'static str,
        /// 0-based level.
        level: usize,
    },
    /// A block-size / interleave-factor expression references a loop index.
    SizeNotInvariant {
        /// Template name.
        template: &'static str,
        /// Position within the size vector.
        pos: usize,
        /// The offending index variable.
        var: Symbol,
    },
    /// The `Unimodular` backend transforms sequential nests only (use
    /// `ReversePermute`/`Parallelize` to reorder parallel loops).
    ParallelLoop {
        /// 0-based level of the `pardo` loop.
        level: usize,
    },
}

impl fmt::Display for PrecondError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrecondError::DepthMismatch { expected, found } => {
                write!(f, "template expects a {expected}-deep nest, found {found}")
            }
            PrecondError::TypeViolation {
                template,
                level,
                side,
                wrt,
                required,
                found,
            } => {
                write!(
                    f,
                    "{template}: type({side:?} bound of loop {level}, {wrt}) = {found} ⋢ {required}"
                )
            }
            PrecondError::NonConstStep { template, level } => {
                write!(
                    f,
                    "{template}: step of loop {level} is not a compile-time constant"
                )
            }
            PrecondError::SizeNotInvariant { template, pos, var } => {
                write!(
                    f,
                    "{template}: size expression {pos} references loop index `{var}`"
                )
            }
            PrecondError::ParallelLoop { level } => {
                write!(
                    f,
                    "Unimodular: loop {level} is pardo (sequential nests only)"
                )
            }
        }
    }
}

impl std::error::Error for PrecondError {}

impl Template {
    /// Checks this instantiation's loop-bounds preconditions against a
    /// nest (Tables 3–4).
    ///
    /// # Errors
    ///
    /// Returns the first violated precondition.
    ///
    /// # Examples
    ///
    /// ```
    /// use irlt_core::Template;
    /// use irlt_ir::Parser;
    ///
    /// // Fig. 4(c): sparse matmul — loop k's bounds are nonlinear in j, so
    /// // Unimodular cannot move j past k, but ReversePermute may move
    /// // loop i innermost (bounds of k are invariant in i).
    /// let nest = Parser::new(
    ///     "do i = 1, n\n do j = 1, n\n  do k = colstr(j), colstr(j + 1) - 1\n   a(i, j) = a(i, j) + b(i, rowidx(k)) * c(k)\n  enddo\n enddo\nenddo",
    /// ).with_function("colstr").with_function("rowidx").parse_nest()?;
    /// let uni = Template::unimodular(irlt_unimodular::IntMatrix::interchange(3, 1, 2))?;
    /// assert!(uni.check_preconditions(&nest).is_err());
    /// let rp = Template::reverse_permute(vec![false; 3], vec![2, 0, 1])?;
    /// assert!(rp.check_preconditions(&nest).is_ok());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn check_preconditions(&self, nest: &LoopNest) -> Result<(), PrecondError> {
        let n = nest.depth();
        if n != self.input_size() {
            return Err(PrecondError::DepthMismatch {
                expected: self.input_size(),
                found: n,
            });
        }
        let indices = nest.index_vars();
        match self {
            Template::Unimodular { .. } => {
                if let Some(level) = nest.loops().iter().position(|l| l.kind.is_parallel()) {
                    return Err(PrecondError::ParallelLoop { level });
                }
                // ∀ i < j: type(l_j, x_i) ⊑ linear ∧ type(u_j, x_i) ⊑ linear
                //          ∧ type(s_j, ·) ⊑ const.
                for (j, l) in nest.loops().iter().enumerate() {
                    if l.step.as_const().is_none() {
                        return Err(PrecondError::NonConstStep {
                            template: "Unimodular",
                            level: j,
                        });
                    }
                    let step_pos = l.step.as_const().expect("just checked") > 0;
                    for wrt in &indices[..j] {
                        require(
                            "Unimodular",
                            j,
                            BoundSide::Lower,
                            &l.lower,
                            step_pos,
                            wrt,
                            &indices,
                            ExprType::Linear,
                        )?;
                        require(
                            "Unimodular",
                            j,
                            BoundSide::Upper,
                            &l.upper,
                            step_pos,
                            wrt,
                            &indices,
                            ExprType::Linear,
                        )?;
                    }
                }
                Ok(())
            }
            Template::ReversePermute { perm, .. } => {
                // Invariance is required exactly across *reordered* pairs:
                // ∀ i < j with perm[i] > perm[j], the bounds of loop j must
                // not depend on x_i.
                for j in 0..n {
                    for i in 0..j {
                        if perm.new_position(i) > perm.new_position(j) {
                            let l = nest.level(j);
                            for (side, e) in [
                                (BoundSide::Lower, &l.lower),
                                (BoundSide::Upper, &l.upper),
                                (BoundSide::Step, &l.step),
                            ] {
                                let found = classify(e, &indices[i], &indices);
                                if found > ExprType::Invar {
                                    return Err(PrecondError::TypeViolation {
                                        template: "ReversePermute",
                                        level: j,
                                        side,
                                        wrt: indices[i].clone(),
                                        required: ExprType::Invar,
                                        found,
                                    });
                                }
                            }
                        }
                    }
                }
                Ok(())
            }
            Template::Parallelize { .. } => Ok(()),
            Template::Block { i, j, bsize, .. } => {
                range_linear_preconditions("Block", nest, &indices, *i, *j)?;
                check_sizes_invariant("Block", bsize, &indices)?;
                Ok(())
            }
            Template::Coalesce { i, j, .. } => {
                // ∀ i ≤ k < m ≤ j: bounds of loop m invariant in x_k
                // (the coalesced range must be rectangular internally).
                for m in *i..=*j {
                    for k in *i..m {
                        let l = nest.level(m);
                        for (side, e) in [
                            (BoundSide::Lower, &l.lower),
                            (BoundSide::Upper, &l.upper),
                            (BoundSide::Step, &l.step),
                        ] {
                            let found = classify(e, &indices[k], &indices);
                            if found > ExprType::Invar {
                                return Err(PrecondError::TypeViolation {
                                    template: "Coalesce",
                                    level: m,
                                    side,
                                    wrt: indices[k].clone(),
                                    required: ExprType::Invar,
                                    found,
                                });
                            }
                        }
                    }
                }
                Ok(())
            }
            Template::Interleave { i, j, isize_, .. } => {
                range_linear_preconditions("Interleave", nest, &indices, *i, *j)?;
                check_sizes_invariant("Interleave", isize_, &indices)?;
                Ok(())
            }
        }
    }
}

/// Shared `Block`/`Interleave` precondition: within the range,
/// `type(l_m, x_k) ⊑ linear`, `type(u_m, x_k) ⊑ linear`,
/// `type(s_m, ·) ⊑ const`.
fn range_linear_preconditions(
    template: &'static str,
    nest: &LoopNest,
    indices: &[Symbol],
    i: usize,
    j: usize,
) -> Result<(), PrecondError> {
    for m in i..=j {
        let l = nest.level(m);
        let Some(step) = l.step.as_const() else {
            return Err(PrecondError::NonConstStep { template, level: m });
        };
        let step_pos = step > 0;
        for k in i..m {
            // A non-unit-magnitude step makes the loop's *start* bound a
            // phase anchor: if it varied with another blocked variable, the
            // tile-clipped element loop would restart off-phase. Require
            // invariance then; unit steps only need linearity.
            let lower_req = if step.abs() == 1 {
                ExprType::Linear
            } else {
                ExprType::Invar
            };
            require(
                template,
                m,
                BoundSide::Lower,
                &l.lower,
                step_pos,
                &indices[k],
                indices,
                lower_req,
            )?;
            require(
                template,
                m,
                BoundSide::Upper,
                &l.upper,
                step_pos,
                &indices[k],
                indices,
                ExprType::Linear,
            )?;
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn require(
    template: &'static str,
    level: usize,
    side: BoundSide,
    expr: &Expr,
    step_positive: bool,
    wrt: &Symbol,
    indices: &[Symbol],
    required: ExprType,
) -> Result<(), PrecondError> {
    let found = classify_bound(expr, side, step_positive, wrt, indices);
    if found > required {
        Err(PrecondError::TypeViolation {
            template,
            level,
            side,
            wrt: wrt.clone(),
            required,
            found,
        })
    } else {
        Ok(())
    }
}

fn check_sizes_invariant(
    template: &'static str,
    sizes: &[Expr],
    indices: &[Symbol],
) -> Result<(), PrecondError> {
    for (pos, e) in sizes.iter().enumerate() {
        for v in indices {
            if e.mentions(v) {
                return Err(PrecondError::SizeNotInvariant {
                    template,
                    pos,
                    var: v.clone(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use irlt_ir::{parse_nest, Parser};
    use irlt_unimodular::IntMatrix;

    fn triangular() -> LoopNest {
        parse_nest("do i = 1, n\n do j = 1, i\n  a(i, j) = 0\n enddo\nenddo").unwrap()
    }

    fn sparse_matmul() -> LoopNest {
        Parser::new(
            "do i = 1, n\n do j = 1, n\n  do k = colstr(j), colstr(j + 1) - 1\n   a(i, j) = a(i, j) + b(i, rowidx(k)) * c(k)\n  enddo\n enddo\nenddo",
        )
        .with_function("colstr")
        .with_function("rowidx")
        .parse_nest()
        .unwrap()
    }

    #[test]
    fn unimodular_accepts_triangular() {
        // Fig. 4(a): triangular bounds are linear — Unimodular legal.
        let t = Template::unimodular(IntMatrix::interchange(2, 0, 1)).unwrap();
        assert!(t.check_preconditions(&triangular()).is_ok());
    }

    #[test]
    fn unimodular_rejects_nonlinear_figure4c() {
        let t = Template::unimodular(IntMatrix::interchange(3, 1, 2)).unwrap();
        let err = t.check_preconditions(&sparse_matmul()).unwrap_err();
        assert!(matches!(
            err,
            PrecondError::TypeViolation {
                template: "Unimodular",
                level: 2,
                found: ExprType::Nonlinear,
                ..
            }
        ));
    }

    #[test]
    fn reverse_permute_allows_innermost_i_figure4c() {
        // Moving loop i to the innermost position: bounds of j and k are
        // invariant in i, so the precondition holds.
        let t = Template::reverse_permute(vec![false; 3], vec![2, 0, 1]).unwrap();
        assert!(t.check_preconditions(&sparse_matmul()).is_ok());
    }

    #[test]
    fn reverse_permute_rejects_swapping_j_and_k() {
        // Moving k before j would need k's bounds invariant in j — they are
        // nonlinear in j.
        let t = Template::reverse_permute(vec![false; 3], vec![0, 2, 1]).unwrap();
        let err = t.check_preconditions(&sparse_matmul()).unwrap_err();
        assert!(matches!(
            err,
            PrecondError::TypeViolation {
                template: "ReversePermute",
                level: 2,
                ..
            }
        ));
    }

    #[test]
    fn reverse_permute_triangular_interchange_rejected() {
        // Triangular bounds are linear but NOT invariant: ReversePermute's
        // stronger precondition rejects the interchange Unimodular allows.
        let t = Template::reverse_permute(vec![false, false], vec![1, 0]).unwrap();
        assert!(t.check_preconditions(&triangular()).is_err());
        let u = Template::unimodular(IntMatrix::interchange(2, 0, 1)).unwrap();
        assert!(u.check_preconditions(&triangular()).is_ok());
    }

    #[test]
    fn reverse_permute_pure_reversal_needs_no_invariance() {
        // rev-only (identity permutation) has no reordered pairs.
        let t = Template::reverse_permute(vec![true, true], vec![0, 1]).unwrap();
        assert!(t.check_preconditions(&triangular()).is_ok());
    }

    #[test]
    fn reverse_permute_allows_symbolic_steps() {
        // "step expressions are not normalized to ±1" — symbolic step ok.
        let nest =
            parse_nest("do i = 1, n, s\n do j = 1, m\n  a(i, j) = 0\n enddo\nenddo").unwrap();
        let t = Template::reverse_permute(vec![true, false], vec![1, 0]).unwrap();
        assert!(t.check_preconditions(&nest).is_ok());
        // Unimodular requires constant steps.
        let u = Template::unimodular(IntMatrix::interchange(2, 0, 1)).unwrap();
        assert!(matches!(
            u.check_preconditions(&nest),
            Err(PrecondError::NonConstStep { level: 0, .. })
        ));
    }

    #[test]
    fn parallelize_has_no_preconditions() {
        let t = Template::parallelize(vec![true, false, true]);
        assert!(t.check_preconditions(&sparse_matmul()).is_ok());
    }

    #[test]
    fn block_triangular_allowed() {
        // Table 4 allows linear bounds inside the blocked range
        // (trapezoidal tiles).
        let t = Template::block(2, 0, 1, vec![Expr::var("b1"), Expr::var("b2")]).unwrap();
        assert!(t.check_preconditions(&triangular()).is_ok());
    }

    #[test]
    fn block_rejects_nonlinear_range() {
        let t = Template::block(3, 1, 2, vec![Expr::var("b1"), Expr::var("b2")]).unwrap();
        assert!(t.check_preconditions(&sparse_matmul()).is_err());
        // Blocking only the i loop (invariant in the range) is fine.
        let t = Template::block(3, 0, 0, vec![Expr::var("b1")]).unwrap();
        assert!(t.check_preconditions(&sparse_matmul()).is_ok());
    }

    #[test]
    fn block_size_must_be_invariant() {
        let t = Template::block(2, 0, 1, vec![Expr::var("b"), Expr::var("i")]).unwrap();
        assert!(matches!(
            t.check_preconditions(&triangular()),
            Err(PrecondError::SizeNotInvariant {
                template: "Block",
                pos: 1,
                ..
            })
        ));
    }

    #[test]
    fn coalesce_requires_rectangular_range() {
        let t = Template::coalesce(2, 0, 1).unwrap();
        assert!(t.check_preconditions(&triangular()).is_err());
        let rect = parse_nest("do i = 1, n\n do j = 1, m\n  a(i, j) = 0\n enddo\nenddo").unwrap();
        assert!(t.check_preconditions(&rect).is_ok());
    }

    #[test]
    fn coalesce_outer_dependence_allowed() {
        // Bounds may depend on loops *outside* the coalesced range.
        let nest = parse_nest(
            "do i = 1, n\n do j = 1, i\n  do k = 1, i\n   a(i, j, k) = 0\n  enddo\n enddo\nenddo",
        )
        .unwrap();
        let t = Template::coalesce(3, 1, 2).unwrap();
        assert!(t.check_preconditions(&nest).is_ok());
    }

    #[test]
    fn interleave_preconditions() {
        // Linear bounds inside the range are fine (like Block).
        let t = Template::interleave(2, 0, 1, vec![Expr::int(2), Expr::int(2)]).unwrap();
        assert!(t.check_preconditions(&triangular()).is_ok());
        // Nonlinear range rejected.
        let t = Template::interleave(3, 1, 2, vec![Expr::int(2), Expr::int(2)]).unwrap();
        assert!(t.check_preconditions(&sparse_matmul()).is_err());
        // Interleave factor referencing an index variable rejected.
        let t = Template::interleave(2, 1, 1, vec![Expr::var("i")]).unwrap();
        assert!(matches!(
            t.check_preconditions(&triangular()),
            Err(PrecondError::SizeNotInvariant {
                template: "Interleave",
                ..
            })
        ));
        // Symbolic step in the range rejected.
        let nest =
            parse_nest("do i = 1, n, s\n do j = 1, m\n  a(i, j) = 0\n enddo\nenddo").unwrap();
        let t = Template::interleave(2, 0, 0, vec![Expr::int(2)]).unwrap();
        assert!(matches!(
            t.check_preconditions(&nest),
            Err(PrecondError::NonConstStep {
                template: "Interleave",
                level: 0
            })
        ));
    }

    #[test]
    fn depth_mismatch_detected() {
        let t = Template::parallelize(vec![true]);
        assert_eq!(
            t.check_preconditions(&triangular()),
            Err(PrecondError::DepthMismatch {
                expected: 1,
                found: 2
            })
        );
    }

    #[test]
    fn unimodular_rejects_pardo() {
        let nest = parse_nest("pardo i = 1, n\n a(i) = 0\nenddo").unwrap();
        let t = Template::unimodular(IntMatrix::identity(1)).unwrap();
        assert_eq!(
            t.check_preconditions(&nest),
            Err(PrecondError::ParallelLoop { level: 0 })
        );
        // ReversePermute transforms parallel loops fine.
        let rp = Template::reverse_permute(vec![true], vec![0]).unwrap();
        assert!(rp.check_preconditions(&nest).is_ok());
    }

    #[test]
    fn error_display() {
        let e = PrecondError::TypeViolation {
            template: "Unimodular",
            level: 2,
            side: BoundSide::Lower,
            wrt: Symbol::new("j"),
            required: ExprType::Linear,
            found: ExprType::Nonlinear,
        };
        let s = e.to_string();
        assert!(s.contains("Unimodular") && s.contains("nonlinear"));
    }
}
