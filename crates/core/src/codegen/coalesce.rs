//! `Coalesce(n, i, j)` code generation (Table 3, citing Polychronopoulos &
//! Kuck's guided self-scheduling).
//!
//! The contiguous loops `i..=j` (whose bounds are invariant within the
//! range, by precondition) collapse into a single normalized loop
//! `x_c = 0 … Π trip_k − 1` with step 1. Initialization statements decode
//! the original indices:
//!
//! ```text
//! x_k = l_k + s_k · ((x_c / Π_{m>k} trip_m) mod trip_k)
//! ```
//!
//! with the `mod` omitted for the outermost coalesced loop and the
//! division omitted for the innermost. The coalesced loop is `pardo` only
//! if *every* loop in the range was `pardo` (Table 3).

use super::trip_count;
use irlt_ir::{Expr, Loop, LoopKind, LoopNest, Stmt, Symbol};

/// Applies the transformation. Preconditions are assumed checked.
pub(super) fn apply(i: usize, j: usize, nest: &LoopNest) -> LoopNest {
    let range = &nest.loops()[i..=j];
    let trips: Vec<Expr> = range
        .iter()
        .map(|l| trip_count(&l.lower, &l.upper, &l.step))
        .collect();

    // Name: first letters of the coalesced variables + "c" (the paper's
    // `jic` for coalesced `jj`, `ii`), freshened against the nest.
    let base: String = range
        .iter()
        .map(|l| l.var.as_str().chars().next().expect("nonempty name"))
        .chain(std::iter::once('c'))
        .collect();
    let taken = nest.all_scalar_symbols();
    let cvar = Symbol::new(base).freshen(|s| taken.contains(s));

    let total: Expr = trips
        .iter()
        .cloned()
        .reduce(Expr::mul)
        .expect("nonempty range");
    let kind = if range.iter().all(|l| l.kind.is_parallel()) {
        LoopKind::ParDo
    } else {
        LoopKind::Do
    };
    let coalesced = Loop {
        var: cvar.clone(),
        lower: Expr::int(0),
        upper: Expr::sub(total, Expr::int(1)).simplify(),
        step: Expr::int(1),
        kind,
    };

    // Decode indices outermost-first.
    let mut new_inits: Vec<Stmt> = Vec::with_capacity(range.len());
    for (k, l) in range.iter().enumerate() {
        // stride = product of inner trip counts.
        let stride: Option<Expr> = trips[k + 1..].iter().cloned().reduce(Expr::mul);
        let mut idx = Expr::var(cvar.clone());
        if let Some(stride) = stride {
            idx = Expr::floor_div(idx, stride);
        }
        if k > 0 {
            idx = Expr::modulo(idx, trips[k].clone());
        }
        let value = Expr::add(l.lower.clone(), Expr::mul(l.step.clone(), idx)).simplify();
        new_inits.push(Stmt::scalar(l.var.clone(), value));
    }
    new_inits.extend(nest.inits().iter().cloned());

    // Inner loops may reference the coalesced variables in their bounds
    // (e.g. Fig. 7's `do j = tmpj, min(n, tmpj + bj − 1)` after coalescing
    // jj and ii). Those variables are no longer loop indices, so their
    // decode expressions are substituted inline — the paper's `tmp`
    // definitions play the same role.
    let decode: Vec<(Symbol, Expr)> = new_inits[..range.len()]
        .iter()
        .map(|s| match (s.target(), s.value()) {
            (Some(irlt_ir::Target::Scalar(v)), Some(value)) => (v.clone(), value.clone()),
            _ => unreachable!("coalesce inits are scalar assignments"),
        })
        .collect();
    let subst = |v: &Symbol| {
        decode
            .iter()
            .find(|(name, _)| name == v)
            .map(|(_, e)| e.clone())
    };

    let mut loops: Vec<Loop> = Vec::with_capacity(nest.depth() - (j - i));
    loops.extend(nest.loops()[..i].iter().cloned());
    loops.push(coalesced);
    for l in &nest.loops()[j + 1..] {
        loops.push(Loop {
            var: l.var.clone(),
            lower: l.lower.substitute(&subst),
            upper: l.upper.substitute(&subst),
            step: l.step.substitute(&subst),
            kind: l.kind,
        });
    }
    LoopNest::with_inits(loops, new_inits, nest.body().to_vec())
}

#[cfg(test)]
mod tests {
    use crate::template::Template;
    use irlt_ir::parse_nest;

    #[test]
    fn rectangular_coalesce() {
        let nest = parse_nest("do i = 1, n\n do j = 1, m\n  a(i, j) = 0\n enddo\nenddo").unwrap();
        let t = Template::coalesce(2, 0, 1).unwrap();
        let out = t.apply_to(&nest).unwrap();
        assert_eq!(out.depth(), 1);
        let text = out.to_string();
        // Trip counts: n and m; total n·m.
        assert!(text.contains("do ijc = 0, n*m - 1, 1"), "{text}");
        assert!(text.contains("i = ijc / m + 1"), "{text}");
        assert!(text.contains("j = ijc mod m + 1"), "{text}");
    }

    #[test]
    fn coalesce_decoding_is_exact() {
        // Evaluate the generated init expressions over the whole coalesced
        // range and check they enumerate exactly the original pairs in
        // row-major order.
        let nest =
            parse_nest("do i = 2, 4\n do j = 5, 11, 3\n  a(i, j) = 0\n enddo\nenddo").unwrap();
        let t = Template::coalesce(2, 0, 1).unwrap();
        let out = t.apply_to(&nest).unwrap();
        assert_eq!(out.level(0).upper.as_const(), Some(8)); // 3·3 − 1
        let mut pairs = Vec::new();
        for c in 0..=8_i64 {
            let env = |s: &irlt_ir::Symbol| (s.as_str() == "ijc").then_some(c);
            let nf = |_: &irlt_ir::Symbol, _: &[i64]| None;
            let i = out.inits()[0]
                .value()
                .unwrap()
                .eval_scalar(&env, &nf)
                .unwrap();
            let j = out.inits()[1]
                .value()
                .unwrap()
                .eval_scalar(&env, &nf)
                .unwrap();
            pairs.push((i, j));
        }
        let expected: Vec<(i64, i64)> = (2..=4)
            .flat_map(|i| [5, 8, 11].into_iter().map(move |j| (i, j)))
            .collect();
        assert_eq!(pairs, expected);
    }

    #[test]
    fn partial_range_keeps_outer_loops() {
        let nest = parse_nest(
            "do i = 1, n\n do j = 1, m\n  do k = 1, p\n   a(i, j, k) = 0\n  enddo\n enddo\nenddo",
        )
        .unwrap();
        let t = Template::coalesce(3, 1, 2).unwrap();
        let out = t.apply_to(&nest).unwrap();
        assert_eq!(out.depth(), 2);
        let vars: Vec<&str> = out.loops().iter().map(|l| l.var.as_str()).collect();
        assert_eq!(vars, ["i", "jkc"]);
    }

    #[test]
    fn pardo_only_when_all_parallel() {
        let nest =
            parse_nest("pardo i = 1, n\n pardo j = 1, m\n  a(i, j) = 0\n enddo\nenddo").unwrap();
        let t = Template::coalesce(2, 0, 1).unwrap();
        assert!(t.apply_to(&nest).unwrap().level(0).kind.is_parallel());

        let nest =
            parse_nest("pardo i = 1, n\n do j = 1, m\n  a(i, j) = 0\n enddo\nenddo").unwrap();
        assert!(!t.apply_to(&nest).unwrap().level(0).kind.is_parallel());
    }

    #[test]
    fn name_collision_freshens() {
        let nest = parse_nest("do i = 1, n\n do j = 1, ijc\n  a(i, j) = 0\n enddo\nenddo").unwrap();
        let t = Template::coalesce(2, 0, 1).unwrap();
        let out = t.apply_to(&nest).unwrap();
        assert_eq!(out.level(0).var, "ijc_1");
    }

    #[test]
    fn inherited_inits_follow_new_ones() {
        // Coalesce after a reversal that produced no inits, then check
        // manually-built inits survive in order.
        let nest = parse_nest("do i = 1, n\n do j = 1, m\n  a(i, j) = 0\n enddo\nenddo").unwrap();
        let t1 = Template::coalesce(2, 0, 1).unwrap();
        let out = t1.apply_to(&nest).unwrap();
        assert_eq!(out.inits().len(), 2);
        assert!(matches!(out.inits()[0].target(), Some(irlt_ir::Target::Scalar(s)) if s == "i"));
    }

    #[test]
    fn runtime_empty_loop_coalesces_to_zero_iterations() {
        // One empty loop makes the trip product ≤ 0: the coalesced loop
        // runs zero times, like the original. (The framework's documented
        // assumption — each loop executes — is only needed when *two or
        // more* coalesced loops are simultaneously empty.)
        let nest = parse_nest("do i = 1, n\n do j = 1, m\n  a(i, j) = 1\n enddo\nenddo").unwrap();
        let t = Template::coalesce(2, 0, 1).unwrap();
        let out = t.apply_to(&nest).unwrap();
        let mut ex = irlt_interp::Executor::new();
        ex.set_param("n", 5).set_param("m", 0); // inner loop empty
        let r = ex.run(&out, irlt_interp::Memory::new()).unwrap();
        assert_eq!(r.iterations, 0);
        let mut ex = irlt_interp::Executor::new();
        ex.set_param("n", 0).set_param("m", 7); // outer loop empty
        let r = ex.run(&out, irlt_interp::Memory::new()).unwrap();
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn negative_step_coalesce_decodes_descending() {
        // do i = 9, 1, -4 visits 9, 5, 1.
        let nest =
            parse_nest("do i = 9, 1, -4\n do j = 1, 2\n  a(i, j) = 0\n enddo\nenddo").unwrap();
        let t = Template::coalesce(2, 0, 1).unwrap();
        let out = t.apply_to(&nest).unwrap();
        assert_eq!(out.level(0).upper.as_const(), Some(5)); // 3·2 − 1
        let cvar = out.level(0).var.clone();
        let mut seen = Vec::new();
        for c in 0..=5_i64 {
            let env = |s: &irlt_ir::Symbol| (s == &cvar).then_some(c);
            let nf = |_: &irlt_ir::Symbol, _: &[i64]| None;
            let i = out.inits()[0]
                .value()
                .unwrap()
                .eval_scalar(&env, &nf)
                .unwrap();
            let j = out.inits()[1]
                .value()
                .unwrap()
                .eval_scalar(&env, &nf)
                .unwrap();
            seen.push((i, j));
        }
        assert_eq!(seen, vec![(9, 1), (9, 2), (5, 1), (5, 2), (1, 1), (1, 2)]);
        // And it executes equivalently.
        let r = irlt_interp::check_equivalence(&nest, &out, &[], 3).unwrap();
        assert!(r.is_equivalent(), "{r}");
    }

    #[test]
    fn single_loop_coalesce_normalizes() {
        // Coalescing a single loop is the paper's "includes normalization
        // of the lower bound and the step".
        let nest = parse_nest("do i = 4, 20, 5\n a(i) = 0\nenddo").unwrap();
        let t = Template::coalesce(1, 0, 0).unwrap();
        let out = t.apply_to(&nest).unwrap();
        let text = out.to_string();
        assert!(text.contains("do ic = 0, 3, 1"), "{text}");
        assert!(text.contains("i = 5*ic + 4"), "{text}");
    }
}
