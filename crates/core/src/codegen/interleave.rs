//! `Interleave(n, i, j, isize)` code generation (Table 3).
//!
//! Interleaving is the strided sibling of `Block`: the outer new loops
//! select an *interleave class* `0 … isize[k]−1`, and the inner loops
//! (original names) stride through that class:
//!
//! ```text
//! loop x'_k = 0, isize[k] − 1, 1
//! …
//! loop x_k  = l_k + x'_k · s_k,  u_k,  isize[k] · s_k
//! ```
//!
//! "In the Block transformation, every block is a set of contiguous
//! iterations in the original loop, while in the Interleave transformation,
//! a block consists of non-contiguous iterations from the original loop."

use super::derived_name;
use irlt_ir::{Expr, Loop, LoopNest, Symbol};

/// Applies the transformation. Preconditions are assumed checked.
pub(super) fn apply(i: usize, j: usize, isize_: &[Expr], nest: &LoopNest) -> LoopNest {
    let n = nest.depth();
    let mut class_names: Vec<Symbol> = Vec::with_capacity(j - i + 1);
    for k in i..=j {
        class_names.push(derived_name(&nest.level(k).var, nest, &class_names));
    }

    let mut loops: Vec<Loop> = Vec::with_capacity(n + (j - i + 1));
    loops.extend(nest.loops()[..i].iter().cloned());
    // Class-selector loops.
    for k in i..=j {
        loops.push(Loop {
            var: class_names[k - i].clone(),
            lower: Expr::int(0),
            upper: Expr::sub(isize_[k - i].clone(), Expr::int(1)).simplify(),
            step: Expr::int(1),
            kind: nest.level(k).kind,
        });
    }
    // Strided element loops.
    for k in i..=j {
        let l = nest.level(k);
        loops.push(Loop {
            var: l.var.clone(),
            lower: Expr::add(
                l.lower.clone(),
                Expr::mul(Expr::var(class_names[k - i].clone()), l.step.clone()),
            )
            .simplify(),
            upper: l.upper.clone(),
            step: Expr::mul(isize_[k - i].clone(), l.step.clone()).simplify(),
            kind: l.kind,
        });
    }
    loops.extend(nest.loops()[j + 1..].iter().cloned());
    LoopNest::with_inits(loops, nest.inits().to_vec(), nest.body().to_vec())
}

#[cfg(test)]
mod tests {
    use crate::template::Template;
    use irlt_ir::{parse_nest, Expr};

    #[test]
    fn single_loop_interleave() {
        let nest = parse_nest("do i = 1, n\n a(i) = 0\nenddo").unwrap();
        let t = Template::interleave(1, 0, 0, vec![Expr::int(4)]).unwrap();
        let out = t.apply_to(&nest).unwrap();
        assert_eq!(out.depth(), 2);
        let text = out.to_string();
        assert!(text.contains("do ii = 0, 3, 1"), "{text}");
        assert!(text.contains("do i = ii + 1, n, 4"), "{text}");
        assert!(out.inits().is_empty());
    }

    #[test]
    fn interleave_covers_exactly_the_original_space() {
        // Enumerate (class, element) pairs and confirm each original i in
        // 1..=10 appears exactly once.
        let nest = parse_nest("do i = 1, 10\n a(i) = 0\nenddo").unwrap();
        let t = Template::interleave(1, 0, 0, vec![Expr::int(3)]).unwrap();
        let out = t.apply_to(&nest).unwrap();
        let mut seen = Vec::new();
        for class in 0..=2_i64 {
            let env = |s: &irlt_ir::Symbol| (s.as_str() == "ii").then_some(class);
            let nf = |_: &irlt_ir::Symbol, _: &[i64]| None;
            let lo = out.level(1).lower.eval_scalar(&env, &nf).unwrap();
            let hi = out.level(1).upper.eval_scalar(&env, &nf).unwrap();
            let st = out.level(1).step.eval_scalar(&env, &nf).unwrap();
            let mut x = lo;
            while x <= hi {
                seen.push(x);
                x += st;
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (1..=10).collect::<Vec<i64>>());
    }

    #[test]
    fn range_interleave_layout() {
        let nest = parse_nest(
            "do i = 1, n\n do j = 1, m\n  do k = 1, p\n   a(i, j, k) = 0\n  enddo\n enddo\nenddo",
        )
        .unwrap();
        let t = Template::interleave(3, 1, 2, vec![Expr::var("fj"), Expr::var("fk")]).unwrap();
        let out = t.apply_to(&nest).unwrap();
        let vars: Vec<&str> = out.loops().iter().map(|l| l.var.as_str()).collect();
        assert_eq!(vars, ["i", "jj", "kk", "j", "k"]);
        assert_eq!(out.level(1).upper.to_string(), "fj - 1");
        assert_eq!(out.level(3).to_string(), "do j = jj + 1, m, fj");
    }

    #[test]
    fn strided_loop_interleave() {
        // Original step 2: element loop steps isize·2 and starts at
        // l + class·2.
        let nest = parse_nest("do i = 0, n, 2\n a(i) = 0\nenddo").unwrap();
        let t = Template::interleave(1, 0, 0, vec![Expr::int(4)]).unwrap();
        let out = t.apply_to(&nest).unwrap();
        assert_eq!(out.level(1).to_string(), "do i = 2*ii, n, 8");
    }

    #[test]
    fn pardo_kind_propagates() {
        let nest = parse_nest("pardo i = 1, n\n a(i) = 0\nenddo").unwrap();
        let t = Template::interleave(1, 0, 0, vec![Expr::int(2)]).unwrap();
        let out = t.apply_to(&nest).unwrap();
        assert!(out.level(0).kind.is_parallel());
        assert!(out.level(1).kind.is_parallel());
    }
}
