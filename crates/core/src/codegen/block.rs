//! `Block(n, i, j, bsize)` code generation (Table 4).
//!
//! Blocking (tiling) the contiguous loops `i..=j` produces *block loops*
//! `x'_i … x'_j` that step between tiles, followed by *element loops*
//! `x_i … x_j` (original names) that step inside one tile, clipped by the
//! original bounds. The paper "takes special care to bound the iteration
//! space so that only tiles with some work are created": a block loop's
//! bound is the original bound evaluated at the tile corner that
//! extremizes it (the `x_min[k,h]` / `x_max[k,h]` substitution), so
//! trapezoidal spaces are tiled tightly rather than boxed.

use super::derived_name;
use irlt_ir::{bound_linear_terms, BoundSide, Expr, Loop, LoopNest, Symbol};

/// Applies the transformation. Preconditions are assumed checked (linear
/// bounds inside the range, constant steps, invariant block sizes).
pub(super) fn apply(i: usize, j: usize, bsize: &[Expr], nest: &LoopNest) -> LoopNest {
    let n = nest.depth();
    let indices = nest.index_vars();

    // Fresh names for the block loops.
    let mut block_names: Vec<Symbol> = Vec::with_capacity(j - i + 1);
    for k in i..=j {
        block_names.push(derived_name(&nest.level(k).var, nest, &block_names));
    }
    let bsize_of = |k: usize| &bsize[k - i];
    let block_var = |k: usize| Expr::var(block_names[k - i].clone());

    let mut loops: Vec<Loop> = Vec::with_capacity(n + (j - i + 1));
    loops.extend(nest.loops()[..i].iter().cloned());

    // Block loops.
    for k in i..=j {
        let l = nest.level(k);
        let step = l.step.as_const().expect("precondition: const step");
        // Substitute each already-blocked variable x_h by the tile corner
        // that extremizes the bound.
        let lower = substitute_corner(
            &l.lower,
            BoundSide::Lower,
            step > 0,
            i,
            k,
            nest,
            &indices,
            &block_names,
            bsize,
        );
        let upper = substitute_corner(
            &l.upper,
            BoundSide::Upper,
            step > 0,
            i,
            k,
            nest,
            &indices,
            &block_names,
            bsize,
        );
        loops.push(Loop {
            var: block_names[k - i].clone(),
            lower,
            upper,
            step: Expr::mul(l.step.clone(), bsize_of(k).clone()).simplify(),
            kind: l.kind,
        });
    }

    // Element loops (original index variables, clipped to the tile ∩ the
    // original bounds).
    for k in i..=j {
        let l = nest.level(k);
        let step = l.step.as_const().expect("precondition: const step");
        let tile_end = Expr::add(
            block_var(k),
            Expr::mul(l.step.clone(), Expr::sub(bsize_of(k).clone(), Expr::int(1))),
        )
        .simplify();
        // When the original bound does not involve blocked variables, the
        // tile grid is anchored at it, so the max/min with the tile origin
        // is redundant (the paper prints `j = jj, min(n, jj+bj−1)`).
        let origin_invariant = (i..k).all(|h| !l.lower.mentions(&indices[h]));
        let (lower, upper) = if step > 0 {
            let lo = if origin_invariant {
                block_var(k)
            } else {
                Expr::max2(block_var(k), l.lower.clone())
            };
            (lo, Expr::min2(l.upper.clone(), tile_end))
        } else {
            let lo = if origin_invariant {
                block_var(k)
            } else {
                Expr::min2(block_var(k), l.lower.clone())
            };
            (lo, Expr::max2(l.upper.clone(), tile_end))
        };
        loops.push(Loop {
            var: l.var.clone(),
            lower,
            upper,
            step: l.step.clone(),
            kind: l.kind,
        });
    }

    loops.extend(nest.loops()[j + 1..].iter().cloned());
    LoopNest::with_inits(loops, nest.inits().to_vec(), nest.body().to_vec())
}

/// Rewrites a blocked-range bound for use as a *block-loop* bound: every
/// blocked variable `x_h` (`i ≤ h < k`) is replaced by the tile corner
/// extremizing the bound — `x'_h + s_h·(bsize[h]−1)` when the coefficient
/// of `x_h` works against the bound's side, `x'_h` otherwise.
#[allow(clippy::too_many_arguments)]
fn substitute_corner(
    bound: &Expr,
    side: BoundSide,
    step_positive: bool,
    i: usize,
    k: usize,
    nest: &LoopNest,
    indices: &[Symbol],
    block_names: &[Symbol],
    bsize: &[Expr],
) -> Expr {
    // Linearity is required (and guaranteed by the precondition) only in
    // the *blocked-range* variables; outer variables may appear arbitrarily
    // (e.g. the nonlinear decode of a previously coalesced loop) and are
    // simply part of the invariant remainder here.
    let range_vars = &indices[i..k];
    if range_vars.is_empty() {
        return bound.simplify();
    }
    let terms = bound_linear_terms(bound, side, step_positive, range_vars)
        .expect("precondition: linear bound within blocked range");
    let result = bound.substitute(&|v: &Symbol| {
        let h = indices[i..k].iter().position(|x| x == v)? + i;
        // Which extreme of the bound does the block loop need over the
        // tile? The *start* bound (Lower field) must cover every tile
        // column: the minimal start for ascending loops, the maximal for
        // descending; the *end* bound symmetrically. From that, the tile
        // corner per variable follows from the coefficient sign.
        let bound_wants_max = match side {
            BoundSide::Lower => !step_positive,
            BoundSide::Upper => step_positive,
            BoundSide::Step => false,
        };
        let want_max = terms.iter().any(|t| {
            let c = t.coeff(v);
            c != 0 && ((c > 0) == bound_wants_max)
        });
        // The tile of loop h spans x'_h … x'_h + s_h·(b_h − 1): the far
        // corner is the maximum only for positive steps.
        let s_h = nest
            .level(h)
            .step
            .as_const()
            .expect("precondition: const step");
        let far_is_max = s_h > 0;
        let base = Expr::var(block_names[h - i].clone());
        Some(if want_max == far_is_max {
            Expr::add(
                base,
                Expr::mul(
                    nest.level(h).step.clone(),
                    Expr::sub(bsize[h - i].clone(), Expr::int(1)),
                ),
            )
            .simplify()
        } else {
            base
        })
    });
    result.simplify()
}

#[cfg(test)]
mod tests {
    use crate::template::Template;
    use irlt_ir::{parse_nest, Expr};

    #[test]
    fn rectangular_matmul_block_figure7() {
        // The Fig. 7 Block step: after ReversePermute the nest is
        // (j, k, i), all 1..n; blocking all three with [bj, bk, bi].
        let nest = parse_nest(
            "do j = 1, n\n do k = 1, n\n  do i = 1, n\n   A(i, j) = A(i, j) + B(i, k) * C(k, j)\n  enddo\n enddo\nenddo",
        )
        .unwrap();
        let t = Template::block(
            3,
            0,
            2,
            vec![Expr::var("bj"), Expr::var("bk"), Expr::var("bi")],
        )
        .unwrap();
        let out = t.apply_to(&nest).unwrap();
        assert_eq!(out.depth(), 6);
        let text = out.to_string();
        assert!(text.contains("do jj = 1, n, bj"), "{text}");
        assert!(text.contains("do kk = 1, n, bk"), "{text}");
        assert!(text.contains("do ii = 1, n, bi"), "{text}");
        assert!(text.contains("do j = jj, min(n, jj + bj - 1), 1"), "{text}");
        assert!(text.contains("do k = kk, min(n, kk + bk - 1), 1"), "{text}");
        assert!(text.contains("do i = ii, min(n, ii + bi - 1), 1"), "{text}");
        assert!(out.inits().is_empty());
    }

    #[test]
    fn triangular_block_is_tight() {
        // do i = 1, n; do j = 1, i — blocking both: the jj loop's upper
        // bound must reach the tile's largest i (ii + b − 1), giving tiles
        // only where work exists.
        let nest = parse_nest("do i = 1, n\n do j = 1, i\n  a(i, j) = 0\n enddo\nenddo").unwrap();
        let t = Template::block(2, 0, 1, vec![Expr::var("b"), Expr::var("b")]).unwrap();
        let out = t.apply_to(&nest).unwrap();
        let text = out.to_string();
        assert!(text.contains("do ii = 1, n, b"), "{text}");
        // u'_jj = i evaluated at the tile's max i: ii + b − 1.
        assert!(text.contains("do jj = 1, ii + b - 1, b"), "{text}");
        // Element loop j clipped by the real bound i.
        assert!(text.contains("do j = jj, min(i, jj + b - 1), 1"), "{text}");
        assert!(text.contains("do i = ii, min(n, ii + b - 1), 1"), "{text}");
    }

    #[test]
    fn decreasing_bound_uses_far_corner_for_lower() {
        // do i = 1, n; do j = n - i + 1, n: lower bound of j decreases in
        // i, so the jj block loop must start at the tile's smallest bound:
        // n − (ii + b − 1) + 1.
        let nest =
            parse_nest("do i = 1, n\n do j = n - i + 1, n\n  a(i, j) = 0\n enddo\nenddo").unwrap();
        let t = Template::block(2, 0, 1, vec![Expr::var("b"), Expr::var("b")]).unwrap();
        let out = t.apply_to(&nest).unwrap();
        let text = out.to_string();
        assert!(text.contains("do jj = n - ii - b + 2, n, b"), "{text}");
        // Element loop keeps the true (per-i) lower bound.
        assert!(
            text.contains("do j = max(jj, n - i + 1), min(n, jj + b - 1), 1"),
            "{text}"
        );
    }

    #[test]
    fn partial_range_block() {
        // Strip-mine only the middle loop of three.
        let nest = parse_nest(
            "do i = 1, n\n do j = 1, m\n  do k = 1, p\n   a(i, j, k) = 0\n  enddo\n enddo\nenddo",
        )
        .unwrap();
        let t = Template::block(3, 1, 1, vec![Expr::int(32)]).unwrap();
        let out = t.apply_to(&nest).unwrap();
        assert_eq!(out.depth(), 4);
        let vars: Vec<&str> = out.loops().iter().map(|l| l.var.as_str()).collect();
        assert_eq!(vars, ["i", "jj", "j", "k"]);
        assert_eq!(out.level(1).step, Expr::int(32));
        assert_eq!(out.level(2).to_string(), "do j = jj, min(m, jj + 31), 1");
    }

    #[test]
    fn pardo_kind_propagates_to_both_levels() {
        let nest = parse_nest("pardo i = 1, n\n a(i) = 0\nenddo").unwrap();
        let t = Template::block(1, 0, 0, vec![Expr::int(8)]).unwrap();
        let out = t.apply_to(&nest).unwrap();
        assert!(out.level(0).kind.is_parallel());
        assert!(out.level(1).kind.is_parallel());
    }

    #[test]
    fn block_after_coalesce_nonlinear_outer_bound() {
        // Found by proptest: strip-mining a loop whose bounds reference a
        // coalesced loop's (nonlinear) decode expression must work — the
        // nonlinearity is in an *outer* variable, not in the blocked range.
        let nest = parse_nest(
            "do i = 1, 3\n do j = 1, 3\n  do k = 1, 3\n   A(i - 1) = A(i) + B(j - k)\n  enddo\n enddo\nenddo",
        )
        .unwrap();
        let seq = crate::TransformSeq::new(3)
            .block(2, 2, vec![Expr::int(3)])
            .unwrap()
            .coalesce(0, 2)
            .unwrap()
            .block(1, 1, vec![Expr::int(2)])
            .unwrap();
        let out = seq.apply(&nest).unwrap();
        assert_eq!(out.depth(), 3);
    }

    #[test]
    fn negative_step_trapezoid_block_is_sound() {
        // Both loops descend; the inner bound depends on the outer. The
        // corner choice must account for the negative step (the tile's far
        // corner is its MINIMUM), or tiles get clipped away.
        let nest =
            parse_nest("do i = 9, 1, -1\n do j = i, 1, -1\n  a(i, j) = a(i, j) + 1\n enddo\nenddo")
                .unwrap();
        let t = Template::block(2, 0, 1, vec![Expr::int(3), Expr::int(3)]).unwrap();
        let out = t.apply_to(&nest).unwrap();
        let r = irlt_interp::check_equivalence(&nest, &out, &[], 7).unwrap();
        assert!(r.is_equivalent(), "{r}\n{out}");
        assert_eq!(r.original_iterations, r.transformed_iterations, "{out}");

        // Ascending outer, descending inner with |step| = 2 and an
        // outer-dependent start bound: the element loop's stride phase is
        // anchored at that start, so no tile clipping can be exact — the
        // precondition must reject it.
        let nest =
            parse_nest("do i = 1, 9\n do j = i, 1, -2\n  a(i, j) = a(i, j) + 1\n enddo\nenddo")
                .unwrap();
        let t = Template::block(2, 0, 1, vec![Expr::int(4), Expr::int(2)]).unwrap();
        assert!(matches!(
            t.apply_to(&nest),
            Err(crate::ApplyError::Precond(
                crate::PrecondError::TypeViolation { .. }
            ))
        ));
        // With an invariant start bound the same shape blocks fine.
        let nest =
            parse_nest("do i = 1, 9\n do j = 9, i, -2\n  a(i, j) = a(i, j) + 1\n enddo\nenddo")
                .unwrap();
        let out = t.apply_to(&nest).unwrap();
        let r = irlt_interp::check_equivalence(&nest, &out, &[], 11).unwrap();
        assert!(r.is_equivalent(), "{r}\n{out}");
        assert_eq!(r.original_iterations, r.transformed_iterations, "{out}");
    }

    #[test]
    fn negative_step_block() {
        // do i = n, 1, -1 blocked by 4: block loop steps −4; element loop
        // runs i = ii down to max(ii − 3, 1).
        let nest = parse_nest("do i = n, 1, -1\n a(i) = 0\nenddo").unwrap();
        let t = Template::block(1, 0, 0, vec![Expr::int(4)]).unwrap();
        let out = t.apply_to(&nest).unwrap();
        let text = out.to_string();
        assert!(text.contains("do ii = n, 1, -4"), "{text}");
        assert!(text.contains("do i = ii, max(1, ii - 3), -1"), "{text}");
    }
}
