//! `ReversePermute(n, rev, perm)` code generation (Table 3).
//!
//! Reversals happen first, then the permutation moves loop `k` to position
//! `perm[k]`. Bounds move verbatim (the preconditions guarantee invariance
//! across every reordered pair), index-variable names are reused, no
//! initialization statements are created, and — unlike `Unimodular` —
//! "step expressions are not normalized to ±1", so symbolic strides
//! survive.

use super::{abs_expr, sgn_expr};
use crate::template::Permutation;
use irlt_ir::{Expr, Loop, LoopNest};

/// Applies the transformation. Preconditions are assumed checked.
pub(super) fn apply(rev: &[bool], perm: &Permutation, nest: &LoopNest) -> LoopNest {
    let n = nest.depth();
    let mut slots: Vec<Option<Loop>> = vec![None; n];
    for k in 0..n {
        let l = nest.level(k).clone();
        let l = if rev[k] { reverse_loop(l) } else { l };
        let slot = &mut slots[perm.new_position(k)];
        debug_assert!(slot.is_none());
        *slot = Some(l);
    }
    let loops = slots
        .into_iter()
        .map(|l| l.expect("perm is total"))
        .collect();
    LoopNest::with_inits(loops, nest.inits().to_vec(), nest.body().to_vec())
}

/// Reverses one loop: the new loop starts at the *last* iterate of the
/// original and steps by `−s` back to the original lower bound:
///
/// ```text
/// do x = u − sgn(s)·mod(abs(u − l), abs(s)),  l,  −s
/// ```
///
/// For `|s| = 1` the `mod` folds away and this is the familiar
/// `do x = u, l, −1`. The formula works for negative and symbolic steps,
/// folding whenever the step (and the span) are compile-time constants.
fn reverse_loop(l: Loop) -> Loop {
    let span = Expr::sub(l.upper.clone(), l.lower.clone()).simplify();
    let offset = match l.step.as_const() {
        Some(s) => {
            // sgn(s)·(|span| mod |s|): with constant step the mod argument
            // keeps its symbolic form but |s| and sgn(s) fold.
            let m = Expr::modulo(mul_sgn(&span, s.signum()), Expr::int(s.abs()));
            mul_sgn(&m, s.signum())
        }
        None => Expr::mul(
            sgn_expr(&l.step),
            Expr::modulo(abs_expr(&span), abs_expr(&l.step)),
        ),
    };
    let new_lower = Expr::sub(l.upper.clone(), offset).simplify();
    Loop {
        var: l.var,
        lower: new_lower,
        upper: l.lower,
        step: Expr::neg(l.step).simplify(),
        kind: l.kind,
    }
}

/// `e · sgn` for a known sign, avoiding `abs` calls on symbolic spans:
/// `sgn(s)·span = |span|` modulo-compatible form when the span's sign
/// matches the step's (a nonempty loop guarantees `sgn(span) = sgn(s)`).
fn mul_sgn(e: &Expr, sgn: i64) -> Expr {
    match sgn {
        1 => e.clone(),
        -1 => Expr::neg(e.clone()).simplify(),
        _ => Expr::int(0),
    }
}

#[cfg(test)]
mod tests {
    use crate::template::Template;
    use irlt_ir::{parse_nest, Expr};

    #[test]
    fn unit_step_reversal() {
        let nest = parse_nest("do i = 1, n\n a(i) = i\nenddo").unwrap();
        let t = Template::reverse_permute(vec![true], vec![0]).unwrap();
        let out = t.apply_to(&nest).unwrap();
        assert_eq!(out.level(0).to_string(), "do i = n, 1, -1");
        assert!(out.inits().is_empty());
    }

    #[test]
    fn constant_step_reversal_lands_on_last_iterate() {
        // do i = 1, 10, 3 visits 1,4,7,10 → reversed: 10,7,4,1.
        let nest = parse_nest("do i = 1, 10, 3\n a(i) = i\nenddo").unwrap();
        let t = Template::reverse_permute(vec![true], vec![0]).unwrap();
        let out = t.apply_to(&nest).unwrap();
        assert_eq!(out.level(0).to_string(), "do i = 10, 1, -3");
        // do i = 1, 11, 3 visits 1,4,7,10 → reversed starts at 10, not 11.
        let nest = parse_nest("do i = 1, 11, 3\n a(i) = i\nenddo").unwrap();
        let out = t.apply_to(&nest).unwrap();
        assert_eq!(out.level(0).to_string(), "do i = 10, 1, -3");
    }

    #[test]
    fn negative_step_reversal() {
        // do i = 10, 2, -4 visits 10,6,2 → reversed: 2,6,10.
        let nest = parse_nest("do i = 10, 2, -4\n a(i) = i\nenddo").unwrap();
        let t = Template::reverse_permute(vec![true], vec![0]).unwrap();
        let out = t.apply_to(&nest).unwrap();
        assert_eq!(out.level(0).to_string(), "do i = 2, 10, 4");
        // Non-exact span: do i = 10, 1, -4 also visits 10,6,2.
        let nest = parse_nest("do i = 10, 1, -4\n a(i) = i\nenddo").unwrap();
        let out = t.apply_to(&nest).unwrap();
        assert_eq!(out.level(0).to_string(), "do i = 2, 10, 4");
    }

    #[test]
    fn symbolic_span_constant_step() {
        let nest = parse_nest("do i = 1, n, 2\n a(i) = i\nenddo").unwrap();
        let t = Template::reverse_permute(vec![true], vec![0]).unwrap();
        let out = t.apply_to(&nest).unwrap();
        assert_eq!(out.level(0).to_string(), "do i = n - (n - 1) mod 2, 1, -2");
    }

    #[test]
    fn symbolic_step_reversal() {
        // The headline ReversePermute feature: reversal with unknown stride.
        let nest = parse_nest("do i = 1, n, s\n a(i) = i\nenddo").unwrap();
        let t = Template::reverse_permute(vec![true], vec![0]).unwrap();
        let out = t.apply_to(&nest).unwrap();
        let text = out.level(0).to_string();
        assert_eq!(text, "do i = n - sgn(s)*(abs(n - 1) mod abs(s)), 1, -s");
    }

    #[test]
    fn permutation_moves_bounds_verbatim() {
        let nest = parse_nest(
            "do i = 1, n\n do j = 1, m, 2\n  do k = 1, p\n   a(i, j, k) = 0\n  enddo\n enddo\nenddo",
        )
        .unwrap();
        // i→2, j→0, k→1 (paper Fig. 7 first step uses perm=[3 1 2] 1-based).
        let t = Template::reverse_permute(vec![false; 3], vec![2, 0, 1]).unwrap();
        let out = t.apply_to(&nest).unwrap();
        let vars: Vec<&str> = out.loops().iter().map(|l| l.var.as_str()).collect();
        assert_eq!(vars, ["j", "k", "i"]);
        assert_eq!(out.level(0).step, Expr::int(2));
        assert_eq!(out.level(2).upper.to_string(), "n");
    }

    #[test]
    fn reverse_and_permute_combine() {
        let nest = parse_nest("do i = 1, n\n do j = 1, m\n  a(i, j) = 0\n enddo\nenddo").unwrap();
        let t = Template::reverse_permute(vec![false, true], vec![1, 0]).unwrap();
        let out = t.apply_to(&nest).unwrap();
        assert_eq!(out.level(0).to_string(), "do j = m, 1, -1");
        assert_eq!(out.level(1).to_string(), "do i = 1, n, 1");
    }

    #[test]
    fn pardo_loops_preserved() {
        let nest =
            parse_nest("pardo i = 1, n\n do j = 1, m\n  a(i, j) = 0\n enddo\nenddo").unwrap();
        let t = Template::reverse_permute(vec![true, false], vec![1, 0]).unwrap();
        let out = t.apply_to(&nest).unwrap();
        assert_eq!(out.level(1).to_string(), "pardo i = n, 1, -1");
        assert_eq!(out.level(0).to_string(), "do j = 1, m, 1");
    }
}
