//! Code generation for the kernel templates (the second column of
//! Tables 3 and 4).
//!
//! Each template maps an input [`LoopNest`] to an output [`LoopNest`]
//! (possibly with a different number of loops) by rewriting loop bounds and
//! prepending *initialization statements* that define the consumed index
//! variables as functions of the new ones (Fig. 3). The loop body itself is
//! never touched — that is what makes these *iteration-reordering*
//! transformations.

mod block;
mod coalesce;
mod interleave;
mod reverse_permute;

use crate::precond::PrecondError;
use crate::template::Template;
use irlt_ir::{Expr, LoopNest, Symbol};
use irlt_unimodular::{UnimodularError, UnimodularTransform};
use std::fmt;

/// An error applying a template to a nest.
#[derive(Clone, Debug, PartialEq)]
pub enum ApplyError {
    /// A loop-bounds precondition was violated.
    Precond(PrecondError),
    /// The unimodular backend failed (nonlinear bounds discovered during
    /// scanning, unbounded transformed space, …).
    Unimodular(UnimodularError),
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::Precond(e) => write!(f, "precondition violated: {e}"),
            ApplyError::Unimodular(e) => write!(f, "unimodular code generation failed: {e}"),
        }
    }
}

impl std::error::Error for ApplyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApplyError::Precond(e) => Some(e),
            ApplyError::Unimodular(e) => Some(e),
        }
    }
}

impl From<PrecondError> for ApplyError {
    fn from(e: PrecondError) -> Self {
        ApplyError::Precond(e)
    }
}

impl From<UnimodularError> for ApplyError {
    fn from(e: UnimodularError) -> Self {
        ApplyError::Unimodular(e)
    }
}

impl Template {
    /// Applies this template instantiation to a nest, checking its
    /// preconditions first.
    ///
    /// The output nest has [`Template::output_size`] loops; its `inits`
    /// are this template's new initialization statements followed by any
    /// inherited ones (the paper's `INIT_k, …, INIT_1` order).
    ///
    /// # Errors
    ///
    /// Returns [`ApplyError`] when a precondition fails or code generation
    /// is impossible.
    ///
    /// # Examples
    ///
    /// ```
    /// use irlt_core::Template;
    /// use irlt_ir::parse_nest;
    ///
    /// let nest = parse_nest("do i = 1, n\n  a(i) = a(i) + 1\nenddo")?;
    /// let t = Template::parallelize(vec![true]);
    /// let out = t.apply_to(&nest)?;
    /// assert!(out.level(0).kind.is_parallel());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn apply_to(&self, nest: &LoopNest) -> Result<LoopNest, ApplyError> {
        self.check_preconditions(nest)?;
        match self {
            Template::Unimodular { matrix } => {
                let t =
                    UnimodularTransform::new(matrix.clone()).expect("validated at construction");
                Ok(t.apply(nest)?)
            }
            Template::ReversePermute { rev, perm } => Ok(reverse_permute::apply(rev, perm, nest)),
            Template::Parallelize { parflag } => {
                let loops = nest
                    .loops()
                    .iter()
                    .zip(parflag)
                    .map(|(l, &par)| {
                        let mut l = l.clone();
                        if par {
                            l.kind = irlt_ir::LoopKind::ParDo;
                        }
                        l
                    })
                    .collect();
                Ok(LoopNest::with_inits(
                    loops,
                    nest.inits().to_vec(),
                    nest.body().to_vec(),
                ))
            }
            Template::Block { i, j, bsize, .. } => Ok(block::apply(*i, *j, bsize, nest)),
            Template::Coalesce { i, j, .. } => Ok(coalesce::apply(*i, *j, nest)),
            Template::Interleave { i, j, isize_, .. } => {
                Ok(interleave::apply(*i, *j, isize_, nest))
            }
        }
    }
}

/// Derives a fresh outer-variable name from a loop variable: single-letter
/// names double (`i` → `ii`, matching the paper's `ii`/`jj`/`kk`),
/// longer names get a numeric suffix; collisions freshen further.
pub(crate) fn derived_name(base: &Symbol, nest: &LoopNest, also_taken: &[Symbol]) -> Symbol {
    let name = base.as_str();
    let candidate = if name.len() == 1 {
        Symbol::new(format!("{name}{name}"))
    } else {
        Symbol::new(format!("{name}2"))
    };
    let taken = nest.all_scalar_symbols();
    candidate.freshen(|s| taken.contains(s) || also_taken.contains(s))
}

/// `abs(e)`, folded for constants.
pub(crate) fn abs_expr(e: &Expr) -> Expr {
    match e.as_const() {
        Some(c) => Expr::int(c.abs()),
        None => Expr::call("abs", vec![e.clone()]),
    }
}

/// `sgn(e)`, folded for constants.
pub(crate) fn sgn_expr(e: &Expr) -> Expr {
    match e.as_const() {
        Some(c) => Expr::int(c.signum()),
        None => Expr::call("sgn", vec![e.clone()]),
    }
}

/// Trip count of a loop: `⌊(u − l)/s⌋ + 1` (empty loops are a run-time
/// concern; the framework assumes each loop executes, as the paper does).
pub(crate) fn trip_count(l: &Expr, u: &Expr, s: &Expr) -> Expr {
    Expr::add(
        Expr::floor_div(Expr::sub(u.clone(), l.clone()).simplify(), s.clone()),
        Expr::int(1),
    )
    .simplify()
}

#[cfg(test)]
mod tests {
    use super::*;
    use irlt_ir::parse_nest;

    #[test]
    fn parallelize_flips_kinds_only() {
        let nest = parse_nest("do i = 1, n\n do j = 1, i\n  a(i, j) = 0\n enddo\nenddo").unwrap();
        let t = Template::parallelize(vec![false, true]);
        let out = t.apply_to(&nest).unwrap();
        assert!(!out.level(0).kind.is_parallel());
        assert!(out.level(1).kind.is_parallel());
        assert_eq!(out.level(1).upper, nest.level(1).upper);
        assert_eq!(out.body(), nest.body());
        assert!(out.inits().is_empty());
    }

    #[test]
    fn trip_count_folds() {
        assert_eq!(
            trip_count(&Expr::int(1), &Expr::int(10), &Expr::int(3)),
            Expr::int(4)
        );
        assert_eq!(
            trip_count(&Expr::int(10), &Expr::int(1), &Expr::int(-4)),
            Expr::int(3)
        );
        let symbolic = trip_count(&Expr::int(1), &Expr::var("n"), &Expr::int(1));
        assert_eq!(symbolic.to_string(), "n"); // (n−1)/1+1 folds
    }

    #[test]
    fn abs_sgn_fold() {
        assert_eq!(abs_expr(&Expr::int(-3)), Expr::int(3));
        assert_eq!(sgn_expr(&Expr::int(-3)), Expr::int(-1));
        assert_eq!(sgn_expr(&Expr::int(0)), Expr::int(0));
        assert_eq!(abs_expr(&Expr::var("s")).to_string(), "abs(s)");
    }

    #[test]
    fn derived_names_avoid_collisions() {
        let nest = parse_nest("do i = 1, n\n do ii = 1, i\n  a(i, ii) = 0\n enddo\nenddo").unwrap();
        let d = derived_name(&Symbol::new("i"), &nest, &[]);
        assert_eq!(d, "ii_1");
        let d2 = derived_name(&Symbol::new("i"), &nest, std::slice::from_ref(&d));
        assert_eq!(d2, "ii_2");
    }
}
