//! Cross-engine oracle protocol: verdict vocabulary, comparison domains,
//! and the outcome table used to adjudicate the Table-2 mapping engine
//! against the affine legality backend (`irlt-affine`).
//!
//! The two engines are *not* expected to agree verbatim everywhere.
//! Table 2 abstracts each dependence entry independently (a per-row
//! interval abstraction), which is **exact** for signed-permutation
//! schedules but deliberately **conservative** for skewed unimodular
//! schedules: `M = [[1,1],[0,−1]]` maps `d = (0⁺, 0⁺)` to `(0⁺, 0⁻)` and
//! Table 2 must declare it illegal, while the exact polytope
//! `δ₁ ≥ 0 ∧ δ₂ ≥ 0 ∧ δ₁+δ₂ = 0 ⟹ δ = 0` has no violating point. The
//! [`CompareDomain`] lattice names what each sequence shape entitles the
//! oracle to demand, and [`cross_check`] turns a verdict pair into an
//! outcome: a [`CrossCheckOutcome::Mismatch`] is always a bug in one of
//! the engines; a [`CrossCheckOutcome::Conservative`] is Table 2 being
//! documented-safe rather than wrong.

use crate::sequence::{Step, TransformSeq};
use crate::template::Template;
use irlt_obs::Telemetry;

/// The verdict vocabulary shared by both legality engines.
///
/// The Table-2 engine only ever answers legal/illegal; the affine
/// backend adds [`OracleVerdict::Unknown`] for the places where its
/// rational relaxation loses exactness (blocking, symbolic block sizes,
/// branch budgets, arithmetic guards).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OracleVerdict {
    /// No dependence is violated under the transformed schedule.
    Legal,
    /// Some dependence admits a violating (rational) iteration pair.
    Illegal,
    /// The engine declined to decide; the documented envelope applies.
    Unknown,
}

/// What a sequence's template mix entitles the oracle to demand, ordered
/// from strictest to weakest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CompareDomain {
    /// Signed-permutation schedules only (`ReversePermute`,
    /// `Parallelize`, signed-permutation `Unimodular` matrices). Both
    /// engines are exact here: verdicts must be **identical**, and the
    /// affine backend must never answer `Unknown`.
    Exact,
    /// Adds general (skewing) unimodular matrices. One-way agreement:
    /// affine-illegal ⟹ Table-2-illegal, but Table 2 may reject
    /// sequences the exact polytope proves legal (see the module doc
    /// counterexample).
    OneWay,
    /// Adds `Block`. The affine backend models tiling by a divisor-free
    /// rational relaxation, so it answers `Legal` (still sound) or
    /// `Unknown`, never `Illegal`.
    Relaxed,
    /// `Coalesce`, `Interleave`, or custom steps: the affine backend has
    /// no schedule encoding, and the oracle skips the comparison.
    Opaque,
}

impl CompareDomain {
    /// Telemetry-friendly name.
    pub fn name(self) -> &'static str {
        match self {
            CompareDomain::Exact => "exact",
            CompareDomain::OneWay => "one_way",
            CompareDomain::Relaxed => "relaxed",
            CompareDomain::Opaque => "opaque",
        }
    }
}

/// Classifies a sequence into the strictest [`CompareDomain`] its steps
/// allow.
pub fn compare_domain(seq: &TransformSeq) -> CompareDomain {
    let mut domain = CompareDomain::Exact;
    for step in seq.steps() {
        let step_domain = match step {
            Step::Custom(_) => CompareDomain::Opaque,
            Step::Builtin(t) => match t {
                Template::ReversePermute { .. } | Template::Parallelize { .. } => {
                    CompareDomain::Exact
                }
                Template::Unimodular { matrix } => {
                    if matrix.is_signed_permutation() {
                        CompareDomain::Exact
                    } else {
                        CompareDomain::OneWay
                    }
                }
                Template::Block { .. } => CompareDomain::Relaxed,
                Template::Coalesce { .. } | Template::Interleave { .. } => CompareDomain::Opaque,
            },
        };
        domain = domain.max(step_domain);
    }
    domain
}

/// The adjudicated result of one cross-engine comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrossCheckOutcome {
    /// Both engines reached the same verdict.
    Agree,
    /// Table 2 said illegal where the affine polytope is provably empty
    /// — the documented conservatism of the per-entry abstraction on
    /// non-exact domains. Safe, counted, not a failure.
    Conservative,
    /// The domain (or an in-envelope `Unknown`) does not entitle the
    /// oracle to compare; nothing is concluded.
    Skipped,
    /// A disagreement outside the documented envelope: a bug in one of
    /// the two engines. Always a test failure.
    Mismatch,
}

impl CrossCheckOutcome {
    /// Stable textual name, used by telemetry and the fuzz-corpus file
    /// format (`outcome: Agree` headers in `tests/corpus/fuzz/`).
    pub fn name(self) -> &'static str {
        match self {
            CrossCheckOutcome::Agree => "Agree",
            CrossCheckOutcome::Conservative => "Conservative",
            CrossCheckOutcome::Skipped => "Skipped",
            CrossCheckOutcome::Mismatch => "Mismatch",
        }
    }
}

impl std::fmt::Display for CrossCheckOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for CrossCheckOutcome {
    type Err = String;

    /// Parses the [`CrossCheckOutcome::name`] form back; the round trip
    /// is exact for all four outcomes.
    fn from_str(s: &str) -> Result<CrossCheckOutcome, String> {
        match s.trim() {
            "Agree" => Ok(CrossCheckOutcome::Agree),
            "Conservative" => Ok(CrossCheckOutcome::Conservative),
            "Skipped" => Ok(CrossCheckOutcome::Skipped),
            "Mismatch" => Ok(CrossCheckOutcome::Mismatch),
            other => Err(format!("unknown oracle outcome `{other}`")),
        }
    }
}

/// The outcome table: adjudicates a Table-2 verdict against an affine
/// verdict given the sequence's [`CompareDomain`].
///
/// | affine \ Table-2 | legal | illegal |
/// |------------------|-------|---------|
/// | `Legal`          | Agree | Exact ⇒ Mismatch, else Conservative |
/// | `Illegal`        | Mismatch | Agree |
/// | `Unknown`        | Exact ⇒ Mismatch, else Skipped | idem |
///
/// `Opaque` domains are always [`CrossCheckOutcome::Skipped`]. The
/// affine-`Illegal` + Table-2-legal cell is a mismatch in **every**
/// non-opaque domain: soundness of Table 2 requires it to reject
/// anything the exact polytope rejects.
pub fn cross_check(
    domain: CompareDomain,
    t2_legal: bool,
    affine: OracleVerdict,
) -> CrossCheckOutcome {
    if domain == CompareDomain::Opaque {
        return CrossCheckOutcome::Skipped;
    }
    match affine {
        OracleVerdict::Unknown => {
            if domain == CompareDomain::Exact {
                CrossCheckOutcome::Mismatch
            } else {
                CrossCheckOutcome::Skipped
            }
        }
        OracleVerdict::Legal => {
            if t2_legal {
                CrossCheckOutcome::Agree
            } else if domain == CompareDomain::Exact {
                CrossCheckOutcome::Mismatch
            } else {
                CrossCheckOutcome::Conservative
            }
        }
        OracleVerdict::Illegal => {
            if t2_legal {
                CrossCheckOutcome::Mismatch
            } else {
                CrossCheckOutcome::Agree
            }
        }
    }
}

/// Records one comparison under the `legality/oracle/*` telemetry
/// namespace: a total, one counter per outcome, one per domain, and an
/// `affine_unknown` counter for envelope tracking. No-op when the handle
/// is disabled.
pub fn record_outcome(
    tel: &Telemetry,
    domain: CompareDomain,
    outcome: CrossCheckOutcome,
    affine: OracleVerdict,
) {
    if !tel.is_enabled() {
        return;
    }
    tel.incr("legality/oracle/cases");
    tel.incr(match outcome {
        CrossCheckOutcome::Agree => "legality/oracle/agree",
        CrossCheckOutcome::Conservative => "legality/oracle/conservative",
        CrossCheckOutcome::Skipped => "legality/oracle/skipped",
        CrossCheckOutcome::Mismatch => "legality/oracle/mismatch",
    });
    tel.count(&format!("legality/oracle/domain/{}", domain.name()), 1);
    if affine == OracleVerdict::Unknown {
        tel.incr("legality/oracle/affine_unknown");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irlt_unimodular::IntMatrix;

    #[test]
    fn domains_classify_by_step_mix() {
        let exact = TransformSeq::new(2)
            .reverse_permute(vec![true, false], vec![1, 0])
            .unwrap()
            .parallelize(vec![true, false])
            .unwrap()
            .unimodular(IntMatrix::interchange(2, 0, 1))
            .unwrap();
        assert_eq!(compare_domain(&exact), CompareDomain::Exact);

        let one_way = exact
            .clone()
            .unimodular(IntMatrix::skew(2, 1, 0, 1))
            .unwrap();
        assert_eq!(compare_domain(&one_way), CompareDomain::OneWay);

        let relaxed = one_way
            .clone()
            .block(0, 1, vec![irlt_ir::Expr::int(2), irlt_ir::Expr::int(2)])
            .unwrap();
        assert_eq!(compare_domain(&relaxed), CompareDomain::Relaxed);

        let opaque = relaxed.coalesce(0, 1).unwrap();
        assert_eq!(compare_domain(&opaque), CompareDomain::Opaque);

        assert_eq!(compare_domain(&TransformSeq::new(3)), CompareDomain::Exact);
    }

    #[test]
    fn outcome_table() {
        use CompareDomain::*;
        use CrossCheckOutcome::*;
        use OracleVerdict::*;

        // Agreement cells.
        assert_eq!(cross_check(Exact, true, Legal), Agree);
        assert_eq!(cross_check(OneWay, false, Illegal), Agree);
        // Table-2 conservatism is a mismatch only on the exact domain.
        assert_eq!(cross_check(Exact, false, Legal), Mismatch);
        assert_eq!(cross_check(OneWay, false, Legal), Conservative);
        assert_eq!(cross_check(Relaxed, false, Legal), Conservative);
        // Affine-illegal against a Table-2 pass is a bug everywhere.
        assert_eq!(cross_check(Exact, true, Illegal), Mismatch);
        assert_eq!(cross_check(OneWay, true, Illegal), Mismatch);
        assert_eq!(cross_check(Relaxed, true, Illegal), Mismatch);
        // Unknown is out-of-envelope only where exactness is promised.
        assert_eq!(cross_check(Exact, true, Unknown), Mismatch);
        assert_eq!(cross_check(OneWay, true, Unknown), Skipped);
        assert_eq!(cross_check(Relaxed, false, Unknown), Skipped);
        // Opaque skips unconditionally.
        assert_eq!(cross_check(Opaque, true, Illegal), Skipped);
        assert_eq!(cross_check(Opaque, false, Legal), Skipped);
    }

    #[test]
    fn outcome_names_round_trip() {
        use CrossCheckOutcome::*;
        for outcome in [Agree, Conservative, Skipped, Mismatch] {
            assert_eq!(
                outcome.to_string().parse::<CrossCheckOutcome>(),
                Ok(outcome)
            );
        }
        assert!(" Agree ".parse::<CrossCheckOutcome>().is_ok());
        assert!("agree".parse::<CrossCheckOutcome>().is_err());
    }

    #[test]
    fn outcomes_are_counted() {
        let tel = Telemetry::enabled();
        record_outcome(
            &tel,
            CompareDomain::Exact,
            CrossCheckOutcome::Agree,
            OracleVerdict::Legal,
        );
        record_outcome(
            &tel,
            CompareDomain::OneWay,
            CrossCheckOutcome::Conservative,
            OracleVerdict::Legal,
        );
        record_outcome(
            &tel,
            CompareDomain::Relaxed,
            CrossCheckOutcome::Skipped,
            OracleVerdict::Unknown,
        );
        let report = tel.report();
        let rendered = report.render();
        assert!(rendered.contains("legality/oracle/cases"));
        assert!(rendered.contains("legality/oracle/agree"));
        assert!(rendered.contains("legality/oracle/conservative"));
        assert!(rendered.contains("legality/oracle/domain/exact"));
        assert!(rendered.contains("legality/oracle/affine_unknown"));
    }
}
