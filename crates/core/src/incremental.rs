//! The incremental legality engine: prefix-cached dependence mapping and
//! shape extension.
//!
//! [`TransformSeq::is_legal`] replays the whole sequence — it remaps the
//! dependence set through `t₁…t_k` and re-walks every intermediate shape.
//! That is the right semantics for a one-shot query, but a beam search
//! extends thousands of candidates that *share prefixes*: the parent's
//! mapped set `D_{k−1}`, its intermediate shape, and (implicitly) the
//! bound-type lattice state of that shape have all been computed already.
//!
//! [`SeqState`] caches exactly that triple. Extending a candidate by one
//! template instantiation costs **one** precondition check, **one**
//! bounds-mapping step, and **one** fail-fast dependence-mapping step over
//! the cached set — O(one template) instead of O(sequence length).
//!
//! # Equivalence with the from-scratch test
//!
//! §3.2 allows *intermediate* stages of a sequence to be illegal; only the
//! final mapped set matters. The fail-fast mapping inside
//! [`SeqState::extend`] would wrongly reject such sequences if it were
//! used to evaluate an arbitrary sequence in one go. It is sound here
//! because a `SeqState` only ever holds a **legal** prefix: the parent's
//! cached set is legal, dependence mapping composes step-wise
//! (`D_k = t_k(D_{k−1})`), so the extension's final set is legal iff no
//! image of the single new step can be lexicographically negative. For
//! chains grown extension-by-extension — the search frontier — the verdict
//! at every step equals `TransformSeq::is_legal` on the corresponding
//! prefix (pinned by the `incremental_matches_scratch` differential
//! property in the workspace test suite).
//!
//! # Subsumption pruning
//!
//! With [`SeqState::with_pruning`], cached sets are kept subsumption-free:
//! a member whose tuple set is covered by another member is dropped.
//! Pruning preserves `Tuples(D)` at the point it is applied, and it stays
//! exact through subsequent *built-in* mapping because every Table 2 rule
//! is monotone in value-set inclusion (if `Tuples(v) ⊆ Tuples(w)` then
//! every image of `v` is subsumed by some image of `w` — distances embed
//! into their sign classes, `blockmap`/`imap` rows nest the same way, and
//! the unimodular rule is interval arithmetic, which is monotone). A
//! user-defined [`KernelTemplate`](crate::KernelTemplate) need not be
//! monotone, so pruning is skipped after custom steps.

use crate::sequence::{IllegalReason, SequenceError, Step, TransformSeq};
use crate::shared::{CachedOutcome, SharedLegalityCache, StateKey};
use crate::template::Template;
use irlt_dependence::DepSet;
use irlt_ir::LoopNest;
use irlt_obs::Telemetry;
use std::fmt;
use std::sync::Arc;

/// Cached legality state of one legal sequence prefix: the sequence, the
/// shape it produces, and the dependence set mapped through it.
///
/// Also exported as [`LegalityCache`].
///
/// # Examples
///
/// ```
/// use irlt_core::{SeqState, Template};
/// use irlt_dependence::DepSet;
/// use irlt_ir::parse_nest;
///
/// let nest = parse_nest(
///     "do i = 2, n\n  do j = 1, m\n    a(i, j) = a(i - 1, j) + 1\n  enddo\nenddo",
/// )?;
/// let deps = DepSet::from_distances(&[&[1, 0]]);
/// let root = SeqState::root(&nest, &deps);
/// // j carries nothing: parallelizing it is a legal extension…
/// let s = root.extend(Template::parallelize(vec![false, true]))?;
/// assert_eq!(s.seq().len(), 1);
/// assert!(s.shape().level(1).kind.is_parallel());
/// // …while parallelizing i is rejected with the witness.
/// assert!(root.extend(Template::parallelize(vec![true, false])).is_err());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct SeqState {
    seq: TransformSeq,
    /// Behind an `Arc` so cache replays and interner hits share one
    /// allocation per distinct shape across every job of a batch.
    shape: Arc<LoopNest>,
    /// Likewise pool-shared when a [`SharedLegalityCache`] is attached.
    mapped: Arc<DepSet>,
    prune: bool,
    telemetry: Telemetry,
    /// Cross-nest memo table (see [`SharedLegalityCache`]); `None` keeps
    /// every extension local.
    shared: Option<SharedLegalityCache>,
    /// Identity tag for cross-job hit accounting in the shared cache.
    owner: u64,
    /// This state's precomputed cache key (interned ids, or the rendered
    /// triple in legacy mode); kept in lock-step with
    /// `(prune, shape, mapped)` whenever `shared` is attached.
    skey: Option<StateKey>,
}

/// Alias for [`SeqState`] naming its role: the cache that lets
/// `TransformSeq` extension reuse the parent's already-mapped set.
pub type LegalityCache = SeqState;

impl SeqState {
    /// The root state: the identity sequence on `nest`, a body-less copy
    /// of its shape, and `deps` unmapped.
    ///
    /// The root is *not* legality-checked — mirroring the search
    /// convention that the identity transformation is always admissible.
    pub fn root(nest: &LoopNest, deps: &DepSet) -> SeqState {
        SeqState {
            seq: TransformSeq::new(nest.depth()),
            shape: Arc::new(LoopNest::with_inits(
                nest.loops().to_vec(),
                Vec::new(),
                Vec::new(),
            )),
            mapped: Arc::new(deps.clone()),
            prune: false,
            telemetry: Telemetry::disabled(),
            shared: None,
            owner: 0,
            skey: None,
        }
    }

    /// Re-derives this state's cache key (and adopts the pool-canonical
    /// `Arc`s) from the attached cache; no-op when no cache is attached.
    fn rekey(&mut self) {
        if let Some(cache) = &self.shared {
            let (key, shape, mapped) = cache.intern_state(
                self.prune,
                Arc::clone(&self.shape),
                Arc::clone(&self.mapped),
            );
            self.skey = Some(key);
            self.shape = shape;
            self.mapped = mapped;
        }
    }

    /// Attaches a telemetry handle; every state derived through
    /// [`SeqState::extend`] inherits it. With the handle enabled, each
    /// extension records legality-cache reuse (`legality/cache/hits`,
    /// `legality/cache/steps_saved`), rejection taxonomy counters
    /// (`legality/reject/*`), subsumption-pruning work
    /// (`legality/prune/*`), and the dependence layer's per-template
    /// fan-out histograms. The default (disabled) handle records nothing
    /// and adds no work to the hot path.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> SeqState {
        self.telemetry = telemetry;
        self
    }

    /// Enables (or disables) subsumption pruning of the cached set; the
    /// flag is inherited by every state derived through
    /// [`SeqState::extend`]. See the module docs for why this is exact
    /// for built-in templates and skipped after custom ones.
    #[must_use]
    pub fn with_pruning(mut self, on: bool) -> SeqState {
        if on && !self.prune {
            self.mapped = Arc::new(self.mapped.prune_subsumed());
        }
        self.prune = on;
        self.rekey();
        self
    }

    /// Attaches a cross-nest [`SharedLegalityCache`]; every state derived
    /// through [`SeqState::extend`] inherits it. `owner` tags deposits so
    /// the cache can distinguish same-job from cross-job hits — pass a
    /// per-job id (any convention works as long as concurrent jobs
    /// differ).
    ///
    /// Cached extensions replay the deposited verdict, shape, and mapped
    /// set **exactly** (see the cache's module docs); results are
    /// bit-identical with and without the cache attached. Only built-in
    /// templates consult the cache; custom steps always recompute.
    #[must_use]
    pub fn with_shared(mut self, cache: SharedLegalityCache, owner: u64) -> SeqState {
        self.shared = Some(cache);
        self.owner = owner;
        self.rekey();
        self
    }

    /// The (legal-prefix) sequence accumulated so far.
    pub fn seq(&self) -> &TransformSeq {
        &self.seq
    }

    /// The shape the sequence produces: loops (bounds, kinds) plus the
    /// accumulated initialization statements, with an empty body — exactly
    /// `self.seq().apply(shape₀)` for the body-less root shape, computed
    /// incrementally.
    pub fn shape(&self) -> &LoopNest {
        &self.shape
    }

    /// The dependence set mapped through the whole prefix
    /// (`D_k = t_k(…t₁(D)…)`), possibly subsumption-pruned.
    pub fn mapped_deps(&self) -> &DepSet {
        &self.mapped
    }

    /// The shared handle behind [`SeqState::shape`] (pool-canonical when
    /// a cache is attached).
    #[cfg(test)]
    pub(crate) fn shape_arc(&self) -> &Arc<LoopNest> {
        &self.shape
    }

    /// The shared handle behind [`SeqState::mapped_deps`].
    #[cfg(test)]
    pub(crate) fn mapped_arc(&self) -> &Arc<DepSet> {
        &self.mapped
    }

    /// Decomposes the state into `(sequence, shape, mapped set)`.
    pub fn into_parts(self) -> (TransformSeq, LoopNest, DepSet) {
        let shape = Arc::try_unwrap(self.shape).unwrap_or_else(|a| (*a).clone());
        let mapped = Arc::try_unwrap(self.mapped).unwrap_or_else(|a| (*a).clone());
        (self.seq, shape, mapped)
    }

    /// Performs exactly the shared-cache probe the extension hot path
    /// performs — key construction plus map lookup — without extending.
    /// Returns `None` when no shared cache is attached, otherwise whether
    /// the `(state, template)` pair is resident.
    ///
    /// Exists so the allocation-counting test can measure the probe path
    /// in isolation; not part of the supported API.
    #[doc(hidden)]
    pub fn shared_probe(&self, template: &Template) -> Option<bool> {
        let cache = self.shared.as_ref()?;
        let skey = self.skey.as_ref()?;
        let tkey = cache.template_key(template);
        Some(cache.lookup(skey, &tkey, self.owner).is_some())
    }

    /// Extends the prefix by one built-in template instantiation,
    /// revalidating **only the new step**: its size chaining, its
    /// loop-bounds preconditions on the cached shape, its bounds mapping,
    /// and the fail-fast dependence mapping of the cached set.
    ///
    /// # Errors
    ///
    /// [`ExtendError::Sequence`] if the template does not chain (the
    /// candidate never reaches the legality test);
    /// [`ExtendError::Illegal`] with the same [`IllegalReason`] taxonomy
    /// as [`TransformSeq::is_legal`] otherwise.
    pub fn extend(&self, template: Template) -> Result<SeqState, ExtendError> {
        self.extend_step(Step::Builtin(template))
    }

    /// Extends the prefix by one step (built-in or custom).
    ///
    /// # Errors
    ///
    /// As for [`SeqState::extend`].
    pub fn extend_step(&self, step: Step) -> Result<SeqState, ExtendError> {
        let tel = &self.telemetry;
        let k = self.seq.len();
        let seq = match &step {
            Step::Builtin(t) => self.seq.clone().push(t.clone()),
            Step::Custom(c) => self.seq.clone().push_custom(c.clone()),
        }
        .map_err(ExtendError::Sequence)?;
        if tel.is_enabled() {
            // Every extension past the chaining check reuses this state's
            // cached mapped set and shape — for a non-root prefix that is
            // a legality-cache hit saving k replayed mapping steps.
            tel.incr("legality/extensions");
            if k > 0 {
                tel.incr("legality/cache/hits");
                tel.count("legality/cache/steps_saved", k as u64);
            }
        }
        // Cross-nest replay: the extension outcome is a pure function of
        // the (prune, shape, mapped, template) key, so a deposited entry
        // — from this job or any other — substitutes for the whole
        // precondition/codegen/mapping pipeline below. Custom steps are
        // never cached (their rendering does not pin their semantics).
        // The template key is computed once here and reused by the
        // lookup and any deposit; the state key was computed when this
        // state was created. Nothing on this path renders a string in
        // fingerprint mode.
        let shared_key = match (&self.shared, &self.skey, &step) {
            (Some(cache), Some(skey), Step::Builtin(t)) => {
                Some((skey.clone(), cache.template_key(t)))
            }
            _ => None,
        };
        if let (Some(cache), Some((skey, tkey))) = (&self.shared, &shared_key) {
            if tel.is_enabled() {
                tel.incr("legality/key/probes");
            }
            if let Some(outcome) = cache.lookup(skey, tkey, self.owner) {
                if tel.is_enabled() {
                    tel.incr("legality/shared/hits");
                }
                return match outcome {
                    CachedOutcome::Legal { shape, mapped, key } => Ok(SeqState {
                        seq,
                        shape,
                        mapped,
                        prune: self.prune,
                        telemetry: tel.clone(),
                        shared: self.shared.clone(),
                        owner: self.owner,
                        skey: Some(key),
                    }),
                    CachedOutcome::Illegal(reason) => {
                        let reason = restamp(reason, k);
                        tel.incr(match &reason {
                            IllegalReason::Precondition { .. } => "legality/reject/precondition",
                            IllegalReason::CodeGen { .. } => "legality/reject/codegen",
                            IllegalReason::Dependences { .. } => "legality/reject/dependences",
                        });
                        Err(ExtendError::Illegal(reason))
                    }
                };
            }
            if tel.is_enabled() {
                tel.incr("legality/shared/misses");
            }
        }
        let deposit_illegal = |reason: &IllegalReason| {
            if let (Some(cache), Some((skey, tkey))) = (&self.shared, &shared_key) {
                cache.insert(
                    skey.clone(),
                    tkey.clone(),
                    CachedOutcome::Illegal(reason.clone()),
                    self.owner,
                );
            }
        };
        if let Err(error) = step.check_preconditions(&self.shape) {
            tel.incr("legality/reject/precondition");
            let reason = IllegalReason::Precondition { step: k, error };
            deposit_illegal(&reason);
            return Err(ExtendError::Illegal(reason));
        }
        let shape = match step.apply_to(&self.shape) {
            Ok(shape) => shape,
            Err(error) => {
                tel.incr("legality/reject/codegen");
                let reason = IllegalReason::CodeGen { step: k, error };
                deposit_illegal(&reason);
                return Err(ExtendError::Illegal(reason));
            }
        };
        let mapped = match self.mapped.try_map_vectors_observed(
            |v| step.map_dep_vector(v),
            tel,
            &step.name(),
        ) {
            Ok(mapped) => mapped,
            Err(w) => {
                tel.incr("legality/reject/dependences");
                let reason = IllegalReason::Dependences { witnesses: vec![w] };
                deposit_illegal(&reason);
                return Err(ExtendError::Illegal(reason));
            }
        };
        let mapped = if self.prune && matches!(step, Step::Builtin(_)) {
            let before = mapped.len();
            let pruned = mapped.prune_subsumed();
            if tel.is_enabled() {
                tel.incr("legality/prune/calls");
                tel.count(
                    "legality/prune/vectors_dropped",
                    (before - pruned.len()) as u64,
                );
            }
            pruned
        } else {
            mapped
        };
        let (skey, shape, mapped) = if let Some(cache) = &self.shared {
            // Intern the child triple once (this also computes its state
            // key for *its* future extensions — including after a custom
            // step, whose children still share) and adopt the canonical
            // pool Arcs so identical children across jobs alias.
            let (child_key, shape, mapped) =
                cache.intern_state(self.prune, Arc::new(shape), Arc::new(mapped));
            if let Some((pkey, tkey)) = shared_key {
                cache.insert(
                    pkey,
                    tkey,
                    CachedOutcome::Legal {
                        shape: Arc::clone(&shape),
                        mapped: Arc::clone(&mapped),
                        key: child_key.clone(),
                    },
                    self.owner,
                );
            }
            (Some(child_key), shape, mapped)
        } else {
            (None, Arc::new(shape), Arc::new(mapped))
        };
        Ok(SeqState {
            seq,
            shape,
            mapped,
            prune: self.prune,
            telemetry: tel.clone(),
            shared: self.shared.clone(),
            owner: self.owner,
            skey,
        })
    }
}

/// Rewrites the step index inside a cached rejection to the caller's
/// prefix length: the same `(shape, mapped, template)` subproblem can sit
/// at different depths in different jobs' sequences.
fn restamp(reason: IllegalReason, step: usize) -> IllegalReason {
    match reason {
        IllegalReason::Precondition { error, .. } => IllegalReason::Precondition { step, error },
        IllegalReason::CodeGen { error, .. } => IllegalReason::CodeGen { step, error },
        r @ IllegalReason::Dependences { .. } => r,
    }
}

/// Why [`SeqState::extend`] rejected an extension.
#[derive(Clone, Debug)]
pub enum ExtendError {
    /// The step does not chain onto the prefix (size mismatch): the
    /// candidate never reached the legality test.
    Sequence(SequenceError),
    /// The extension fails the uniform legality test. For dependence
    /// rejections the witness list holds the first offending image found
    /// (fail-fast), not the exhaustive list `TransformSeq::is_legal`
    /// reports.
    Illegal(IllegalReason),
}

impl ExtendError {
    /// True when the extension reached — and failed — the legality test.
    pub fn is_illegal(&self) -> bool {
        matches!(self, ExtendError::Illegal(_))
    }
}

impl fmt::Display for ExtendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtendError::Sequence(e) => write!(f, "{e}"),
            ExtendError::Illegal(r) => write!(f, "illegal: {r}"),
        }
    }
}

impl std::error::Error for ExtendError {}

#[cfg(test)]
mod tests {
    use super::*;
    use irlt_ir::{parse_nest, Expr};
    use irlt_unimodular::IntMatrix;

    fn stencil() -> (LoopNest, DepSet) {
        let nest = parse_nest(
            "do i = 2, n - 1\n do j = 2, n - 1\n  a(i, j) = a(i - 1, j) + a(i, j - 1)\n enddo\nenddo",
        )
        .unwrap();
        (nest, DepSet::from_distances(&[&[1, 0], &[0, 1]]))
    }

    /// Grows a chain step by step; every verdict and every cached set must
    /// match the from-scratch path on the corresponding prefix.
    fn assert_chain_matches_scratch(nest: &LoopNest, deps: &DepSet, templates: Vec<Template>) {
        let shape0 = LoopNest::with_inits(nest.loops().to_vec(), Vec::new(), Vec::new());
        let mut state = SeqState::root(nest, deps);
        for t in templates {
            let scratch_seq = state.seq().clone().push(t.clone()).unwrap();
            let scratch = scratch_seq.is_legal(nest, deps);
            match state.extend(t) {
                Ok(next) => {
                    assert!(scratch.is_legal(), "incremental accepted, scratch rejected");
                    assert_eq!(next.mapped_deps(), &scratch_seq.map_deps(deps));
                    assert_eq!(next.shape(), &scratch_seq.apply(&shape0).unwrap());
                    state = next;
                }
                Err(e) => {
                    assert!(
                        !scratch.is_legal(),
                        "incremental rejected legal prefix: {e}"
                    );
                    return;
                }
            }
        }
    }

    #[test]
    fn figure1_chain_matches_scratch() {
        let (nest, deps) = stencil();
        assert_chain_matches_scratch(
            &nest,
            &deps,
            vec![
                Template::unimodular(IntMatrix::skew(2, 0, 1, 1)).unwrap(),
                Template::unimodular(IntMatrix::interchange(2, 0, 1)).unwrap(),
                Template::parallelize(vec![false, true]),
            ],
        );
    }

    #[test]
    fn block_chain_matches_scratch() {
        let (nest, deps) = stencil();
        assert_chain_matches_scratch(
            &nest,
            &deps,
            vec![
                Template::block(2, 0, 1, vec![Expr::int(4), Expr::int(4)]).unwrap(),
                Template::parallelize(vec![false; 4]),
                Template::coalesce(4, 0, 1).unwrap(),
            ],
        );
    }

    #[test]
    fn illegal_extension_reports_witness() {
        let (nest, _) = stencil();
        let deps = DepSet::from_distances(&[&[1, -1]]);
        let root = SeqState::root(&nest, &deps);
        let swap = Template::reverse_permute(vec![false, false], vec![1, 0]).unwrap();
        match root.extend(swap) {
            Err(ExtendError::Illegal(IllegalReason::Dependences { witnesses })) => {
                assert_eq!(witnesses.len(), 1);
                assert!(witnesses[0].can_be_lex_negative());
            }
            other => panic!("expected dependence rejection, got {other:?}"),
        }
    }

    #[test]
    fn size_mismatch_is_not_illegal() {
        let (nest, deps) = stencil();
        let root = SeqState::root(&nest, &deps);
        let err = root
            .extend(Template::parallelize(vec![true; 3]))
            .unwrap_err();
        assert!(!err.is_illegal());
        assert!(err.to_string().contains("3-deep"));
    }

    #[test]
    fn precondition_rejection_reports_step_index() {
        let nest = parse_nest("do i = 1, n\n do j = 1, i\n  a(i, j) = 0\n enddo\nenddo").unwrap();
        let root = SeqState::root(&nest, &DepSet::new());
        let s = root
            .extend(Template::parallelize(vec![false, false]))
            .unwrap();
        let swap = Template::reverse_permute(vec![false, false], vec![1, 0]).unwrap();
        match s.extend(swap) {
            Err(ExtendError::Illegal(IllegalReason::Precondition { step, .. })) => {
                assert_eq!(step, 1)
            }
            other => panic!("expected precondition rejection, got {other:?}"),
        }
    }

    #[test]
    fn pruning_preserves_verdicts_and_tuples() {
        let (nest, _) = stencil();
        // (1,0) dominates (1,1)-style distances once merged: build a set
        // with redundancy.
        let deps = DepSet::from_vectors(vec![
            irlt_dependence::DepVector::distances(&[1, 2]),
            irlt_dependence::DepVector::new(vec![
                irlt_dependence::DepElem::POS,
                irlt_dependence::DepElem::ANY,
            ]),
            irlt_dependence::DepVector::distances(&[0, 1]),
        ])
        .unwrap();
        let plain = SeqState::root(&nest, &deps);
        let pruned = SeqState::root(&nest, &deps).with_pruning(true);
        assert_eq!(pruned.mapped_deps().len(), 2);
        let swap = Template::unimodular(IntMatrix::interchange(2, 0, 1)).unwrap();
        let skew = Template::unimodular(IntMatrix::skew(2, 0, 1, 1)).unwrap();
        for t in [skew, swap] {
            let a = plain.extend(t.clone());
            let b = pruned.extend(t);
            assert_eq!(a.is_ok(), b.is_ok());
            if let (Ok(a), Ok(b)) = (a, b) {
                // Same tuple set: mutual pairwise-subsumption cover.
                for v in a.mapped_deps() {
                    assert!(
                        b.mapped_deps().iter().any(|w| v.subsumed_by(w)),
                        "{v} uncovered"
                    );
                }
                for v in b.mapped_deps() {
                    assert!(
                        a.mapped_deps().iter().any(|w| v.subsumed_by(w)),
                        "{v} uncovered"
                    );
                }
            }
        }
    }

    #[test]
    fn telemetry_counts_cache_hits_and_rejections() {
        let (nest, deps) = stencil();
        let tel = Telemetry::enabled();
        let root = SeqState::root(&nest, &deps)
            .with_pruning(true)
            .with_telemetry(tel.clone());
        // Legal chain of two steps: skew then interchange.
        let s1 = root
            .extend(Template::unimodular(IntMatrix::skew(2, 0, 1, 1)).unwrap())
            .unwrap();
        let s2 = s1
            .extend(Template::unimodular(IntMatrix::interchange(2, 0, 1)).unwrap())
            .unwrap();
        // A dependence-illegal extension from the root (both loops carried).
        assert!(root
            .extend(Template::parallelize(vec![true, true]))
            .is_err());
        // An arity mismatch: never reaches the legality test or counters.
        assert!(s2.extend(Template::parallelize(vec![true; 3])).is_err());
        let r = tel.report();
        assert_eq!(r.counter("legality/extensions"), 3);
        // Only the extension of a non-root prefix is a cache hit.
        assert_eq!(r.counter("legality/cache/hits"), 1);
        assert_eq!(r.counter("legality/cache/steps_saved"), 1);
        assert_eq!(r.counter("legality/reject/dependences"), 1);
        assert_eq!(r.counter("depmap/failfast_short_circuits"), 1);
        // Pruning ran after each successful built-in extension.
        assert_eq!(r.counter("legality/prune/calls"), 2);
        // Fan-out histograms are labelled by template.
        assert!(
            r.histograms.contains_key("depmap/fanout/Unimodular"),
            "{:?}",
            r.histograms
        );
        // The handle is inherited: s2 still records into the same sink.
        assert!(s2.extend(Template::parallelize(vec![false, true])).is_ok());
        assert_eq!(tel.report().counter("legality/extensions"), 4);
    }

    #[test]
    fn telemetry_disabled_by_default_and_results_identical() {
        let (nest, deps) = stencil();
        let tel = Telemetry::enabled();
        let plain = SeqState::root(&nest, &deps).with_pruning(true);
        let observed = SeqState::root(&nest, &deps)
            .with_pruning(true)
            .with_telemetry(tel.clone());
        let t = Template::unimodular(IntMatrix::skew(2, 0, 1, 1)).unwrap();
        let a = plain.extend(t.clone()).unwrap();
        let b = observed.extend(t).unwrap();
        assert_eq!(a.mapped_deps(), b.mapped_deps());
        assert_eq!(a.shape(), b.shape());
        assert_eq!(a.seq().to_string(), b.seq().to_string());
        // The default state never recorded anything anywhere.
        assert!(plain.telemetry.report().counters.is_empty());
        assert!(tel.report().counter("legality/extensions") > 0);
    }

    #[test]
    fn into_parts_roundtrip() {
        let (nest, _) = stencil();
        // Only the i-carried dependence: j is free to parallelize, and
        // `parmap` leaves (1, 0) unchanged.
        let deps = DepSet::from_distances(&[&[1, 0]]);
        let s = SeqState::root(&nest, &deps)
            .extend(Template::parallelize(vec![false, true]))
            .unwrap();
        let (seq, shape, mapped) = s.into_parts();
        assert_eq!(seq.len(), 1);
        assert_eq!(shape.depth(), 2);
        assert_eq!(mapped, deps);
    }
}
