//! Stage-by-stage explanation of a transformation sequence — the format
//! of the paper's Fig. 7 table: after each template instantiation, the
//! mapped dependence vectors and the loop headers (index, LB, UB, STEP,
//! kind) of the intermediate nest.

use crate::sequence::{SeqApplyError, TransformSeq};
use irlt_dependence::DepSet;
use irlt_ir::LoopNest;
use irlt_obs::Telemetry;
use std::fmt::Write as _;

impl TransformSeq {
    /// Renders the sequence's effect on `nest` stage by stage (Fig. 7's
    /// layout): each row shows the instantiation applied, the dependence
    /// vectors after it (in the appendix's compact notation), and the loop
    /// headers of the intermediate nest.
    ///
    /// # Errors
    ///
    /// Returns [`SeqApplyError`] if a step cannot generate code for its
    /// intermediate nest (the explanation is only meaningful for sequences
    /// whose preconditions hold).
    ///
    /// # Examples
    ///
    /// ```
    /// use irlt_core::TransformSeq;
    /// use irlt_dependence::DepSet;
    /// use irlt_ir::parse_nest;
    ///
    /// let nest = parse_nest("do i = 1, n\n  do j = 1, m\n    a(i, j) = 0\n  enddo\nenddo")?;
    /// let seq = TransformSeq::new(2).coalesce(0, 1).unwrap();
    /// let text = seq.explain(&nest, &DepSet::new()).unwrap();
    /// assert!(text.contains("START"));
    /// assert!(text.contains("Coalesce"));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn explain(&self, nest: &LoopNest, deps: &DepSet) -> Result<String, SeqApplyError> {
        self.explain_observed(nest, deps, &Telemetry::disabled())
    }

    /// [`TransformSeq::explain`] fed by the observability layer: the
    /// stage-by-stage dependence mapping runs through the observed
    /// (telemetry-recording) path, and when the handle is enabled the
    /// rendered [`irlt_obs::Report`] — per-template image fan-out
    /// histograms included — is appended under a `telemetry` heading.
    /// With a disabled handle the output is exactly
    /// [`TransformSeq::explain`]'s.
    ///
    /// # Errors
    ///
    /// As for [`TransformSeq::explain`].
    pub fn explain_observed(
        &self,
        nest: &LoopNest,
        deps: &DepSet,
        tel: &Telemetry,
    ) -> Result<String, SeqApplyError> {
        let mut out = String::new();
        let mut shape = LoopNest::with_inits(nest.loops().to_vec(), Vec::new(), Vec::new());
        let mut d = deps.clone();
        render_stage(&mut out, "START", &d, &shape);
        for (k, step) in self.steps().iter().enumerate() {
            shape = step
                .apply_to(&shape)
                .map_err(|error| SeqApplyError { step: k, error })?;
            shape =
                LoopNest::with_inits(shape.loops().to_vec(), shape.inits().to_vec(), Vec::new());
            d = step.map_dep_set_observed(&d, tel);
            render_stage(&mut out, &step.to_string(), &d, &shape);
        }
        if tel.is_enabled() {
            let _ = writeln!(out, "telemetry");
            for line in tel.report().render().lines() {
                let _ = writeln!(out, "  {line}");
            }
        }
        Ok(out)
    }
}

fn render_stage(out: &mut String, label: &str, deps: &DepSet, shape: &LoopNest) {
    let dep_strs: Vec<String> = deps.iter().map(|v| v.paper_str()).collect();
    let _ = writeln!(out, "{label}");
    let _ = writeln!(
        out,
        "  D = {{{}}}",
        if dep_strs.is_empty() {
            "∅".to_string()
        } else {
            dep_strs.join(", ")
        }
    );
    let header = format!(
        "  {:<8} {:<28} {:<28} {:<14} loop",
        "index", "LB", "UB", "STEP"
    );
    let _ = writeln!(out, "{header}");
    for l in shape.loops() {
        let _ = writeln!(
            out,
            "  {:<8} {:<28} {:<28} {:<14} {}",
            l.var.to_string(),
            l.lower.to_string(),
            l.upper.to_string(),
            l.step.to_string(),
            l.kind
        );
    }
    for init in shape.inits() {
        let _ = writeln!(out, "  with {init}");
    }
    let _ = writeln!(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use irlt_ir::{parse_nest, Expr};

    #[test]
    fn figure7_explanation_contains_all_stages() {
        let nest = parse_nest(
            "do i = 1, n\n do j = 1, n\n  do k = 1, n\n   A(i, j) = A(i, j) + B(i, k) * C(k, j)\n  enddo\n enddo\nenddo",
        )
        .unwrap();
        let deps = irlt_dependence::analyze_dependences(&nest);
        let b = |s: &str| Expr::var(s);
        let seq = TransformSeq::new(3)
            .reverse_permute(vec![false; 3], vec![2, 0, 1])
            .unwrap()
            .block(0, 2, vec![b("bj"), b("bk"), b("bi")])
            .unwrap()
            .parallelize(vec![true, false, true, false, false, false])
            .unwrap()
            .reverse_permute(vec![false; 6], vec![0, 2, 1, 3, 4, 5])
            .unwrap()
            .coalesce(0, 1)
            .unwrap();
        let text = seq.explain(&nest, &deps).unwrap();
        assert!(text.contains("START"), "{text}");
        assert!(text.contains("(=,=,+)"), "{text}");
        assert!(text.contains("(=,+,=,=,*,=)"), "{text}");
        assert!(text.matches("pardo").count() >= 3, "{text}");
        assert!(text.contains("with jj ="), "init rebinds shown: {text}");
        // Six stages: START + five templates.
        assert_eq!(text.matches("  D = {").count(), 6, "{text}");
    }

    #[test]
    fn explanation_reports_failing_step() {
        let nest = parse_nest("do i = 1, n\n do j = 1, i\n  a(i, j) = 0\n enddo\nenddo").unwrap();
        // ReversePermute interchange violates its precondition on the
        // triangular nest.
        let seq = TransformSeq::new(2)
            .reverse_permute(vec![false, false], vec![1, 0])
            .unwrap();
        let err = seq.explain(&nest, &DepSet::new()).unwrap_err();
        assert_eq!(err.step, 0);
    }

    #[test]
    fn observed_explanation_appends_telemetry_with_fanout() {
        let nest =
            parse_nest("do i = 1, n\n do j = 1, n\n  a(i, j) = a(i - 1, j - 1) + 1\n enddo\nenddo")
                .unwrap();
        let deps = irlt_dependence::analyze_dependences(&nest);
        let seq = TransformSeq::new(2)
            .block(0, 1, vec![Expr::int(4), Expr::int(4)])
            .unwrap();
        let tel = Telemetry::enabled();
        let text = seq.explain_observed(&nest, &deps, &tel).unwrap();
        assert!(text.contains("telemetry"), "{text}");
        assert!(text.contains("depmap/fanout/Block"), "{text}");
        // Blocking the (1,1) distance fans out to 2×2 = 4 images.
        assert_eq!(tel.report().histograms["depmap/fanout/Block"][&4], 1);
        // The disabled path renders exactly the plain explanation.
        let plain = seq.explain(&nest, &deps).unwrap();
        assert_eq!(
            seq.explain_observed(&nest, &deps, &Telemetry::disabled())
                .unwrap(),
            plain
        );
        assert!(!plain.contains("telemetry"), "{plain}");
    }

    #[test]
    fn empty_dependence_set_renders() {
        let nest = parse_nest("do i = 1, n\n a(i) = 0\nenddo").unwrap();
        let seq = TransformSeq::new(1);
        let text = seq.explain(&nest, &DepSet::new()).unwrap();
        assert!(text.contains('∅'), "{text}");
    }
}
