//! Trace-driven nest simulation: execute a nest with the interpreter,
//! translate its access trace to addresses, and replay it against a cache.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::layout::{AddressError, AddressMap};
use irlt_interp::{ExecError, Executor, Memory, TraceLevel};
use irlt_ir::LoopNest;
use std::fmt;

/// A failure while simulating a nest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The nest failed to execute.
    Exec(ExecError),
    /// An access fell outside the declared arrays.
    Address(AddressError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Exec(e) => write!(f, "{e}"),
            SimError::Address(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ExecError> for SimError {
    fn from(e: ExecError) -> Self {
        SimError::Exec(e)
    }
}

impl From<AddressError> for SimError {
    fn from(e: AddressError) -> Self {
        SimError::Address(e)
    }
}

/// Result of [`simulate_nest`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimResult {
    /// Cache counters after replaying the whole trace.
    pub stats: CacheStats,
    /// Innermost iterations executed.
    pub iterations: usize,
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} over {} iterations", self.stats, self.iterations)
    }
}

/// Executes `nest` with the given parameters and replays its memory trace
/// against a fresh cache of the given geometry.
///
/// # Errors
///
/// Returns [`SimError`] on execution or addressing failures.
///
/// # Examples
///
/// ```
/// use irlt_cachesim::{simulate_nest, AddressMap, CacheConfig, Order};
/// use irlt_ir::parse_nest;
///
/// let nest = parse_nest("do i = 1, n\n  s(1) = s(1) + a(i)\nenddo")?;
/// let mut map = AddressMap::new(Order::ColMajor, 8);
/// map.declare("a", &[64]).declare("s", &[1]);
/// let r = simulate_nest(&nest, &[("n", 64)], &map, CacheConfig::l1())?;
/// // Streaming 64 contiguous 8-byte elements with 64-byte lines: 8 misses
/// // for `a` plus 1 for `s`.
/// assert_eq!(r.stats.misses, 9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn simulate_nest(
    nest: &LoopNest,
    params: &[(&str, i64)],
    map: &AddressMap,
    config: CacheConfig,
) -> Result<SimResult, SimError> {
    let mut ex = Executor::new();
    for &(k, v) in params {
        ex.set_param(k, v);
    }
    ex.trace(TraceLevel::Accesses);
    let run = ex.run(nest, Memory::new())?;
    let mut cache = Cache::new(config);
    map.drive(&run.trace, |addr| {
        cache.access(addr);
    })?;
    Ok(SimResult {
        stats: cache.stats(),
        iterations: run.iterations,
    })
}

/// [`simulate_nest`] fed by the observability layer: on success the cache
/// counters are exported through `tel` under `cachesim/*` (`simulations`,
/// `accesses`, `hits`, `misses`, `iterations`, and the per-trial
/// `miss_ratio` stream); failed trials count under
/// `cachesim/trial_failures`. With a disabled handle this is exactly
/// [`simulate_nest`].
///
/// # Errors
///
/// As for [`simulate_nest`].
pub fn simulate_nest_observed(
    nest: &LoopNest,
    params: &[(&str, i64)],
    map: &AddressMap,
    config: CacheConfig,
    tel: &irlt_obs::Telemetry,
) -> Result<SimResult, SimError> {
    let result = simulate_nest(nest, params, map, config);
    if tel.is_enabled() {
        match &result {
            Ok(r) => {
                tel.incr("cachesim/simulations");
                tel.count("cachesim/accesses", r.stats.accesses);
                tel.count("cachesim/hits", r.stats.hits);
                tel.count("cachesim/misses", r.stats.misses);
                tel.count("cachesim/iterations", r.iterations as u64);
                tel.observe("cachesim/miss_ratio", r.stats.miss_ratio());
            }
            Err(_) => tel.incr("cachesim/trial_failures"),
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Order;
    use irlt_ir::parse_nest;

    #[test]
    fn streaming_miss_count() {
        // 512 elements × 8 B = 4096 B = 64 lines.
        let nest = parse_nest("do i = 1, n\n s(1) = s(1) + a(i)\nenddo").unwrap();
        let mut map = AddressMap::new(Order::ColMajor, 8);
        map.declare("a", &[512]).declare("s", &[1]);
        let r = simulate_nest(&nest, &[("n", 512)], &map, CacheConfig::l1()).unwrap();
        assert_eq!(r.stats.misses, 64 + 1);
        assert_eq!(r.iterations, 512);
    }

    #[test]
    fn column_vs_row_traversal_of_colmajor_array() {
        // Fortran layout: walking the first subscript is unit-stride.
        let by_col =
            parse_nest("do j = 1, n\n do i = 1, n\n  s(1) = s(1) + a(i, j)\n enddo\nenddo")
                .unwrap();
        let by_row =
            parse_nest("do i = 1, n\n do j = 1, n\n  s(1) = s(1) + a(i, j)\n enddo\nenddo")
                .unwrap();
        let mut map = AddressMap::new(Order::ColMajor, 8);
        map.declare("a", &[128, 128]).declare("s", &[1]);
        // Cache much smaller than the 128 KiB array.
        let cfg = CacheConfig {
            size_bytes: 8 * 1024,
            line_bytes: 64,
            associativity: 4,
        };
        let good = simulate_nest(&by_col, &[("n", 128)], &map, cfg).unwrap();
        let bad = simulate_nest(&by_row, &[("n", 128)], &map, cfg).unwrap();
        assert!(
            bad.stats.misses > 4 * good.stats.misses,
            "row-major walk of a col-major array should thrash: {} vs {}",
            bad.stats,
            good.stats
        );
    }

    #[test]
    fn observed_simulation_exports_counters() {
        let nest = parse_nest("do i = 1, n\n s(1) = s(1) + a(i)\nenddo").unwrap();
        let mut map = AddressMap::new(Order::ColMajor, 8);
        map.declare("a", &[512]).declare("s", &[1]);
        let tel = irlt_obs::Telemetry::enabled();
        let r =
            simulate_nest_observed(&nest, &[("n", 512)], &map, CacheConfig::l1(), &tel).unwrap();
        let report = tel.report();
        assert_eq!(report.counter("cachesim/simulations"), 1);
        assert_eq!(report.counter("cachesim/misses"), r.stats.misses);
        assert_eq!(report.counter("cachesim/hits"), r.stats.hits);
        assert_eq!(report.counter("cachesim/accesses"), r.stats.accesses);
        assert_eq!(report.stats["cachesim/miss_ratio"].count, 1);
        // A failed trial (unbound `n`) counts separately.
        simulate_nest_observed(&nest, &[], &map, CacheConfig::l1(), &tel).unwrap_err();
        assert_eq!(tel.report().counter("cachesim/trial_failures"), 1);
    }

    #[test]
    fn undeclared_array_reported() {
        let nest = parse_nest("do i = 1, 4\n q(i) = 0\nenddo").unwrap();
        let map = AddressMap::new(Order::RowMajor, 8);
        let err = simulate_nest(&nest, &[], &map, CacheConfig::l1()).unwrap_err();
        assert!(matches!(err, SimError::Address(_)));
        assert!(err.to_string().contains('q'));
    }

    #[test]
    fn exec_error_propagates() {
        let nest = parse_nest("do i = 1, n\n a(i) = 0\nenddo").unwrap();
        let map = AddressMap::new(Order::RowMajor, 8);
        let err = simulate_nest(&nest, &[], &map, CacheConfig::l1()).unwrap_err();
        assert!(matches!(err, SimError::Exec(_)));
    }
}
