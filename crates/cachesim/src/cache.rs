//! A set-associative LRU cache model.
//!
//! Iteration-reordering transformations are "used extensively … for
//! optimizing data locality" (§1); this model is the measuring instrument:
//! feed it the memory-access trace of a nest before and after a
//! transformation and compare miss counts.

use std::collections::VecDeque;
use std::fmt;

/// Cache geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line (block) size in bytes.
    pub line_bytes: usize,
    /// Ways per set (1 = direct-mapped; `size/line` = fully associative).
    pub associativity: usize,
}

impl CacheConfig {
    /// A small L1-like default: 32 KiB, 64-byte lines, 8-way.
    pub fn l1() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            associativity: 8,
        }
    }

    /// A larger L2-like default: 512 KiB, 64-byte lines, 8-way.
    pub fn l2() -> CacheConfig {
        CacheConfig {
            size_bytes: 512 * 1024,
            line_bytes: 64,
            associativity: 8,
        }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero sizes, capacity not a
    /// multiple of `line × ways`).
    pub fn num_sets(&self) -> usize {
        assert!(self.size_bytes > 0 && self.line_bytes > 0 && self.associativity > 0);
        let lines = self.size_bytes / self.line_bytes;
        assert_eq!(
            lines * self.line_bytes,
            self.size_bytes,
            "capacity not line-aligned"
        );
        assert_eq!(lines % self.associativity, 0, "lines not divisible by ways");
        lines / self.associativity
    }
}

/// Hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]` (0 when no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} misses ({:.2}%)",
            self.accesses,
            self.misses,
            100.0 * self.miss_ratio()
        )
    }
}

/// A set-associative LRU cache.
///
/// # Examples
///
/// ```
/// use irlt_cachesim::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig { size_bytes: 128, line_bytes: 32, associativity: 2 });
/// assert!(!c.access(0));   // cold miss
/// assert!(c.access(8));    // same line
/// assert_eq!(c.stats().misses, 1);
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<VecDeque<u64>>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (see [`CacheConfig::num_sets`]).
    pub fn new(config: CacheConfig) -> Cache {
        let sets = vec![VecDeque::with_capacity(config.associativity); config.num_sets()];
        Cache {
            config,
            sets,
            stats: CacheStats::default(),
        }
    }

    /// The geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accesses one byte address; returns `true` on hit. Reads and writes
    /// behave identically (write-allocate, no write-back modelling —
    /// miss counts are what locality studies compare).
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.config.line_bytes as u64;
        let set_idx = (line % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        self.stats.accesses += 1;
        if let Some(pos) = set.iter().position(|&t| t == line) {
            set.remove(pos);
            set.push_front(line);
            self.stats.hits += 1;
            true
        } else {
            if set.len() == self.config.associativity {
                set.pop_back();
            }
            set.push_front(line);
            self.stats.misses += 1;
            false
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 lines of 16 bytes, 2-way → 2 sets.
        Cache::new(CacheConfig {
            size_bytes: 64,
            line_bytes: 16,
            associativity: 2,
        })
    }

    #[test]
    fn geometry() {
        assert_eq!(tiny().config().num_sets(), 2);
        assert_eq!(CacheConfig::l1().num_sets(), 64);
    }

    #[test]
    #[should_panic(expected = "ways")]
    fn inconsistent_geometry_rejected() {
        Cache::new(CacheConfig {
            size_bytes: 64,
            line_bytes: 16,
            associativity: 3,
        });
    }

    #[test]
    fn spatial_locality_hits_within_line() {
        let mut c = tiny();
        assert!(!c.access(0));
        for b in 1..16 {
            assert!(c.access(b), "byte {b} shares the line");
        }
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().accesses, 16);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 holds lines with even line numbers (line % 2 == 0):
        // lines 0, 2, 4 → addresses 0, 32, 64.
        c.access(0); // line 0
        c.access(32); // line 2
        c.access(0); // touch line 0 again → line 2 is now LRU
        c.access(64); // line 4 evicts line 2
        assert!(c.access(0), "line 0 retained");
        assert!(!c.access(32), "line 2 was evicted");
    }

    #[test]
    fn temporal_reuse_after_capacity_exceeded() {
        let mut c = tiny();
        // Stream 8 distinct lines (> capacity 4), then re-touch the first.
        for k in 0..8u64 {
            c.access(k * 16);
        }
        assert!(!c.access(0), "line 0 evicted by the stream");
    }

    #[test]
    fn miss_ratio_and_display() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        let s = c.stats();
        assert_eq!(s.miss_ratio(), 0.5);
        assert!(s.to_string().contains("50.00%"));
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.access(0), "cold again after reset");
    }
}
