//! A two-level inclusive cache hierarchy.
//!
//! Locality studies often want to see *where* a transformation's benefit
//! lands: tiling for L1 can leave L2 behaviour unchanged, and vice versa.
//! [`Hierarchy`] replays one address stream through an L1 and, on L1
//! misses only, an L2, and reports both counters plus a simple weighted
//! cost (hit/miss latencies).

use crate::cache::{Cache, CacheConfig, CacheStats};
use std::fmt;

/// Latency weights for the cost model (cycles, arbitrary units).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Latencies {
    /// Cost of an L1 hit.
    pub l1_hit: u64,
    /// Additional cost of an L1 miss that hits in L2.
    pub l2_hit: u64,
    /// Additional cost of an L2 miss (memory access).
    pub memory: u64,
}

impl Default for Latencies {
    fn default() -> Self {
        // Conventional ballpark ratios: 4 / 12 / 100.
        Latencies {
            l1_hit: 4,
            l2_hit: 12,
            memory: 100,
        }
    }
}

/// A two-level hierarchy.
///
/// # Examples
///
/// ```
/// use irlt_cachesim::{CacheConfig, Hierarchy, Latencies};
///
/// let mut h = Hierarchy::new(CacheConfig::l1(), CacheConfig::l2(), Latencies::default());
/// h.access(0);
/// h.access(8); // same L1 line
/// assert_eq!(h.l1().hits, 1);
/// assert_eq!(h.l2().accesses, 1); // only the first (missing) access reached L2
/// ```
#[derive(Clone, Debug)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
    latencies: Latencies,
}

impl Hierarchy {
    /// Creates an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent cache geometry.
    pub fn new(l1: CacheConfig, l2: CacheConfig, latencies: Latencies) -> Hierarchy {
        Hierarchy {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            latencies,
        }
    }

    /// Accesses one byte address through the hierarchy.
    pub fn access(&mut self, addr: u64) {
        if !self.l1.access(addr) {
            self.l2.access(addr);
        }
    }

    /// L1 counters.
    pub fn l1(&self) -> CacheStats {
        self.l1.stats()
    }

    /// L2 counters (accessed only on L1 misses).
    pub fn l2(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Weighted total cost under the configured latencies.
    pub fn cost(&self) -> u64 {
        let l1 = self.l1.stats();
        let l2 = self.l2.stats();
        l1.accesses * self.latencies.l1_hit
            + l2.accesses * self.latencies.l2_hit
            + l2.misses * self.latencies.memory
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
    }
}

impl fmt::Display for Hierarchy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L1: {} | L2: {} | cost {}",
            self.l1.stats(),
            self.l2.stats(),
            self.cost()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hierarchy {
        Hierarchy::new(
            CacheConfig {
                size_bytes: 128,
                line_bytes: 32,
                associativity: 2,
            },
            CacheConfig {
                size_bytes: 512,
                line_bytes: 32,
                associativity: 4,
            },
            Latencies::default(),
        )
    }

    #[test]
    fn l2_sees_only_l1_misses() {
        let mut h = tiny();
        h.access(0);
        h.access(8);
        h.access(16);
        assert_eq!(h.l1().accesses, 3);
        assert_eq!(h.l1().misses, 1);
        assert_eq!(h.l2().accesses, 1);
    }

    #[test]
    fn l2_catches_l1_capacity_misses() {
        let mut h = tiny();
        // Stream 8 lines (L1 holds 4, L2 holds 16), then re-touch the first:
        // L1 misses, L2 hits.
        for k in 0..8u64 {
            h.access(k * 32);
        }
        h.access(0);
        assert_eq!(h.l1().misses, 9);
        assert_eq!(h.l2().accesses, 9);
        assert_eq!(h.l2().hits, 1);
    }

    #[test]
    fn cost_model_weights() {
        let mut h = tiny();
        h.access(0); // L1 miss, L2 miss
        h.access(0); // L1 hit
                     // cost = 2·l1_hit + 1·l2_hit + 1·memory = 8 + 12 + 100.
        assert_eq!(h.cost(), 120);
        assert!(h.to_string().contains("cost 120"));
    }

    #[test]
    fn reset_clears_both_levels() {
        let mut h = tiny();
        h.access(0);
        h.reset();
        assert_eq!(h.l1().accesses, 0);
        assert_eq!(h.l2().accesses, 0);
        assert_eq!(h.cost(), 0);
    }
}
