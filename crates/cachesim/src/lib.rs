//! # irlt-cachesim — cache simulation for locality studies
//!
//! The measuring instrument for the *motivation* of iteration-reordering
//! transformations: "optimizing … data locality" (§1). The paper itself
//! reports no hardware numbers; this crate substitutes a transparent
//! model so the benchmark suite can show *who wins and by how much* when
//! a nest is interchanged, blocked, or interleaved:
//!
//! * [`Cache`] — set-associative LRU with hit/miss counters;
//! * [`AddressMap`] — array declarations with row-/column-major
//!   linearization and page-disjoint bases;
//! * [`simulate_nest`] — execute a nest (via `irlt-interp`), replay its
//!   access trace against a cache, and report counters;
//! * [`Hierarchy`] — a two-level (L1/L2) inclusive hierarchy with a
//!   weighted cost model.
//!
//! # Examples
//!
//! ```
//! use irlt_cachesim::{simulate_nest, AddressMap, CacheConfig, Order};
//! use irlt_ir::parse_nest;
//!
//! let nest = parse_nest("do i = 1, n\n  s(1) = s(1) + a(i)\nenddo")?;
//! let mut map = AddressMap::new(Order::ColMajor, 8);
//! map.declare("a", &[128]).declare("s", &[1]);
//! let r = simulate_nest(&nest, &[("n", 128)], &map, CacheConfig::l1())?;
//! assert!(r.stats.miss_ratio() < 0.1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod hierarchy;
mod layout;
mod sim;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{Hierarchy, Latencies};
pub use layout::{AddressError, AddressMap, Order};
pub use sim::{simulate_nest, simulate_nest_observed, SimError, SimResult};
