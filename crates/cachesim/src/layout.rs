//! Array-to-address mapping.
//!
//! Assigns each array a disjoint base address and linearizes subscripts in
//! row-major (C) or column-major (Fortran) order. Fed with
//! [`irlt_interp::AccessEvent`]s, it turns a logical trace into a byte
//! trace for the cache model.

use irlt_interp::AccessEvent;
use irlt_ir::Symbol;
use std::collections::BTreeMap;
use std::fmt;

/// Subscript linearization order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Order {
    /// Last subscript varies fastest (C).
    #[default]
    RowMajor,
    /// First subscript varies fastest (Fortran — the paper's language).
    ColMajor,
}

/// Declared geometry of one array.
#[derive(Clone, Debug, PartialEq, Eq)]
struct ArrayDecl {
    base: u64,
    /// Extent per dimension (subscripts are 0-based offsets from `origin`).
    dims: Vec<u64>,
    origin: Vec<i64>,
}

/// The address map: declare arrays, then translate accesses.
///
/// # Examples
///
/// ```
/// use irlt_cachesim::{AddressMap, Order};
///
/// let mut map = AddressMap::new(Order::ColMajor, 8);
/// map.declare("A", &[10, 10]);
/// // Column-major: A(2,1) and A(3,1) are adjacent.
/// let a = map.address(&"A".into(), &[2, 1]).unwrap();
/// let b = map.address(&"A".into(), &[3, 1]).unwrap();
/// assert_eq!(b - a, 8);
/// ```
#[derive(Clone, Debug)]
pub struct AddressMap {
    arrays: BTreeMap<Symbol, ArrayDecl>,
    order: Order,
    elem_bytes: u64,
    next_base: u64,
}

/// An access fell outside a declared array (or hit an undeclared one).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AddressError {
    /// The array.
    pub array: Symbol,
    /// The subscripts.
    pub indices: Vec<i64>,
}

impl fmt::Display for AddressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "access {}{:?} outside declared bounds",
            self.array, self.indices
        )
    }
}

impl std::error::Error for AddressError {}

impl AddressMap {
    /// Creates a map with the given linearization order and element size.
    pub fn new(order: Order, elem_bytes: u64) -> AddressMap {
        AddressMap {
            arrays: BTreeMap::new(),
            order,
            elem_bytes,
            next_base: 0,
        }
    }

    /// Declares an array with 1-based subscripts `1..=dims[k]` (the
    /// Fortran convention used throughout the paper's examples).
    pub fn declare(&mut self, name: impl Into<Symbol>, dims: &[u64]) -> &mut AddressMap {
        self.declare_with_origin(name, dims, &vec![1; dims.len()])
    }

    /// Declares an array whose subscripts start at `origin[k]`.
    ///
    /// # Panics
    ///
    /// Panics if `dims` and `origin` lengths differ or a dimension is zero.
    pub fn declare_with_origin(
        &mut self,
        name: impl Into<Symbol>,
        dims: &[u64],
        origin: &[i64],
    ) -> &mut AddressMap {
        assert_eq!(dims.len(), origin.len(), "dims/origin mismatch");
        assert!(dims.iter().all(|&d| d > 0), "zero-extent dimension");
        let len: u64 = dims.iter().product::<u64>() * self.elem_bytes;
        let decl = ArrayDecl {
            base: self.next_base,
            dims: dims.to_vec(),
            origin: origin.to_vec(),
        };
        // Pad bases to 4096 to keep arrays page-disjoint (prevents false
        // line sharing between arrays from muddying locality studies).
        self.next_base += len.div_ceil(4096) * 4096 + 4096;
        self.arrays.insert(name.into(), decl);
        self
    }

    /// Translates one access to a byte address.
    ///
    /// # Errors
    ///
    /// Returns [`AddressError`] for undeclared arrays or out-of-bounds
    /// subscripts.
    pub fn address(&self, array: &Symbol, indices: &[i64]) -> Result<u64, AddressError> {
        let decl = self.arrays.get(array).ok_or_else(|| AddressError {
            array: array.clone(),
            indices: indices.to_vec(),
        })?;
        if indices.len() != decl.dims.len() {
            return Err(AddressError {
                array: array.clone(),
                indices: indices.to_vec(),
            });
        }
        let mut offsets = Vec::with_capacity(indices.len());
        for (k, &ix) in indices.iter().enumerate() {
            let off = ix - decl.origin[k];
            if off < 0 || off as u64 >= decl.dims[k] {
                return Err(AddressError {
                    array: array.clone(),
                    indices: indices.to_vec(),
                });
            }
            offsets.push(off as u64);
        }
        let mut linear = 0u64;
        match self.order {
            Order::RowMajor => {
                for (k, &off) in offsets.iter().enumerate() {
                    linear = linear * decl.dims[k] + off;
                }
            }
            Order::ColMajor => {
                for k in (0..offsets.len()).rev() {
                    linear = linear * decl.dims[k] + offsets[k];
                }
            }
        }
        Ok(decl.base + linear * self.elem_bytes)
    }

    /// Translates a whole trace, feeding each address into `sink`.
    ///
    /// # Errors
    ///
    /// Returns the first [`AddressError`].
    pub fn drive(
        &self,
        trace: &[AccessEvent],
        mut sink: impl FnMut(u64),
    ) -> Result<(), AddressError> {
        for e in trace {
            sink(self.address(&e.array, &e.indices)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::new(s)
    }

    #[test]
    fn row_major_linearization() {
        let mut m = AddressMap::new(Order::RowMajor, 8);
        m.declare("A", &[4, 5]);
        let a11 = m.address(&sym("A"), &[1, 1]).unwrap();
        let a12 = m.address(&sym("A"), &[1, 2]).unwrap();
        let a21 = m.address(&sym("A"), &[2, 1]).unwrap();
        assert_eq!(a12 - a11, 8);
        assert_eq!(a21 - a11, 5 * 8);
    }

    #[test]
    fn col_major_linearization() {
        let mut m = AddressMap::new(Order::ColMajor, 8);
        m.declare("A", &[4, 5]);
        let a11 = m.address(&sym("A"), &[1, 1]).unwrap();
        let a12 = m.address(&sym("A"), &[1, 2]).unwrap();
        let a21 = m.address(&sym("A"), &[2, 1]).unwrap();
        assert_eq!(a21 - a11, 8);
        assert_eq!(a12 - a11, 4 * 8);
    }

    #[test]
    fn arrays_are_disjoint_and_page_separated() {
        let mut m = AddressMap::new(Order::RowMajor, 8);
        m.declare("A", &[100]).declare("B", &[100]);
        let a_end = m.address(&sym("A"), &[100]).unwrap();
        let b_start = m.address(&sym("B"), &[1]).unwrap();
        assert!(b_start > a_end);
        assert_eq!(b_start % 4096, 0);
    }

    #[test]
    fn bounds_checked() {
        let mut m = AddressMap::new(Order::RowMajor, 8);
        m.declare("A", &[4]);
        assert!(m.address(&sym("A"), &[0]).is_err()); // 1-based
        assert!(m.address(&sym("A"), &[5]).is_err());
        assert!(m.address(&sym("A"), &[1, 1]).is_err()); // rank mismatch
        assert!(m.address(&sym("B"), &[1]).is_err()); // undeclared
        let e = m.address(&sym("B"), &[1]).unwrap_err();
        assert!(e.to_string().contains('B'));
    }

    #[test]
    fn custom_origin() {
        let mut m = AddressMap::new(Order::RowMajor, 8);
        m.declare_with_origin("Z", &[10], &[0]);
        assert!(m.address(&sym("Z"), &[0]).is_ok());
        assert!(m.address(&sym("Z"), &[9]).is_ok());
        assert!(m.address(&sym("Z"), &[10]).is_err());
    }
}
