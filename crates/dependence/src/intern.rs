//! Fingerprint-keyed interning: one `Arc` per distinct structure.
//!
//! The shared legality cache sees the same shapes and mapped dependence
//! sets over and over — 87.5% of probes hit in BENCH_5 — so storing an
//! owned copy per cache entry wastes memory, and *comparing* by value
//! (or by rendered string) wastes time. The interner gives every
//! distinct value a small dense `u32` id and a shared [`Arc`]:
//! equal ids ⟺ equal values, so the cache key shrinks to a few
//! machine words and cross-nest hits share storage.
//!
//! # Bucket discipline
//!
//! This mirrors the dedup index in [`crate::DepSet`]
//! (`index: HashMap<u64, Vec<u32>>`): values are bucketed by their
//! 128-bit structural fingerprint, and **every** bucket hit is verified
//! with an exact `==` comparison before an id is reused. A fingerprint
//! collision therefore costs one extra comparison (observable in
//! [`Interner::collision_misses`]) but can never alias two distinct
//! values to one id. See [`crate::fingerprint`] for why 128 bits.
//!
//! # Id stability
//!
//! Ids are dense indices into an append-only slab and are **stable for
//! the interner's lifetime** — they are never recycled, because callers
//! (the incremental legality engine) hold ids inside live search states
//! and a recycled id would silently alias two different states. The
//! pool's growth is bounded by the number of *distinct* structures
//! seen, which the generational cache eviction already bounds in
//! practice; lifecycle management beyond that is the sharded-cache
//! follow-up's problem (ROADMAP item 1).

use std::collections::HashMap;
use std::sync::Arc;

use crate::fingerprint::Fingerprint128;

/// The result of interning: a dense id plus the shared storage.
///
/// `id` equality is value equality (for values from the same interner).
#[derive(Clone, Debug)]
pub struct Interned<T> {
    /// Dense, stable, per-interner id; equal ids ⟺ equal values.
    pub id: u32,
    /// The canonical shared copy.
    pub value: Arc<T>,
}

/// Counters describing an interner's behavior (all monotonic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InternerStats {
    /// Distinct values in the pool.
    pub len: u64,
    /// Interning requests that found an existing entry.
    pub hits: u64,
    /// Exact-equality comparisons run on fingerprint-bucket candidates.
    pub verifies: u64,
    /// Verifies that *failed*: two distinct values shared a fingerprint
    /// bucket. Expected ≈ 0; growth here means the fingerprint is weak.
    pub collision_misses: u64,
}

/// An append-only pool of distinct values keyed by structural
/// fingerprint with exact-equality verification.
///
/// ```
/// use irlt_dependence::intern::Interner;
/// use irlt_dependence::{DepSet, DepVector};
///
/// let mut pool: Interner<DepSet> = Interner::new();
/// let mut a = DepSet::new();
/// a.insert(DepVector::distances(&[1, 0])).unwrap();
/// let first = pool.intern(a.clone());
/// let again = pool.intern(a);
/// assert_eq!(first.id, again.id);
/// assert!(std::sync::Arc::ptr_eq(&first.value, &again.value));
/// assert_eq!(pool.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct Interner<T> {
    buckets: HashMap<u128, Vec<u32>>,
    slab: Vec<Arc<T>>,
    hits: u64,
    verifies: u64,
    collision_misses: u64,
}

impl<T> Default for Interner<T> {
    fn default() -> Interner<T> {
        Interner::new()
    }
}

impl<T> Interner<T> {
    /// An empty pool.
    pub fn new() -> Interner<T> {
        Interner {
            buckets: HashMap::new(),
            slab: Vec::new(),
            hits: 0,
            verifies: 0,
            collision_misses: 0,
        }
    }

    /// Number of distinct values interned.
    pub fn len(&self) -> usize {
        self.slab.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.slab.is_empty()
    }

    /// The canonical copy for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn get(&self, id: u32) -> &Arc<T> {
        &self.slab[id as usize]
    }

    /// Monotonic behavior counters.
    pub fn stats(&self) -> InternerStats {
        InternerStats {
            len: self.slab.len() as u64,
            hits: self.hits,
            verifies: self.verifies,
            collision_misses: self.collision_misses,
        }
    }
}

impl<T: Eq + Fingerprint128> Interner<T> {
    /// Interns an owned value (no clone on the miss path).
    pub fn intern(&mut self, value: T) -> Interned<T> {
        let fp = value.fingerprint128();
        match self.find(fp, &value) {
            Some(found) => found,
            None => self.insert_new(fp, Arc::new(value)),
        }
    }

    /// Interns a value already behind an `Arc` (no copy either way; on a
    /// hit the canonical earlier `Arc` wins and `value` is dropped).
    pub fn intern_arc(&mut self, value: Arc<T>) -> Interned<T> {
        let fp = value.fingerprint128();
        match self.find(fp, &value) {
            Some(found) => found,
            None => self.insert_new(fp, value),
        }
    }

    /// Interns by reference: probes the pool without building an owned
    /// copy, and clones `value` only when it is genuinely new. The hit
    /// path performs **no allocation** — the property the shared
    /// legality cache's probe path asserts with a counting allocator.
    pub fn intern_ref(&mut self, value: &T) -> Interned<T>
    where
        T: Clone,
    {
        let fp = value.fingerprint128();
        match self.find(fp, value) {
            Some(found) => found,
            None => self.insert_new(fp, Arc::new(value.clone())),
        }
    }

    /// The bucket-scan core, with the fingerprint supplied by the caller.
    ///
    /// Exposed (doc-hidden) so tests can *force* a bucket collision —
    /// two distinct values filed under one fingerprint — and watch the
    /// exact-equality verify rescue them into distinct ids. Production
    /// callers must pass `value.fingerprint128()`.
    #[doc(hidden)]
    pub fn intern_arc_with_fingerprint(&mut self, fp: u128, value: Arc<T>) -> Interned<T> {
        match self.find(fp, &value) {
            Some(found) => found,
            None => self.insert_new(fp, value),
        }
    }

    /// Scans the fingerprint bucket, verifying every candidate with an
    /// exact `==` before reusing its id. Allocation-free.
    fn find(&mut self, fp: u128, value: &T) -> Option<Interned<T>> {
        let ids = self.buckets.get(&fp)?;
        for &id in ids.iter() {
            self.verifies += 1;
            if *self.slab[id as usize] == *value {
                self.hits += 1;
                return Some(Interned {
                    id,
                    value: Arc::clone(&self.slab[id as usize]),
                });
            }
            self.collision_misses += 1;
        }
        None
    }

    fn insert_new(&mut self, fp: u128, value: Arc<T>) -> Interned<T> {
        let id = u32::try_from(self.slab.len()).expect("interner overflow (> 4G distinct values)");
        self.buckets.entry(fp).or_default().push(id);
        self.slab.push(Arc::clone(&value));
        Interned { id, value }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DepSet, DepVector};

    fn set(rows: &[&[i64]]) -> DepSet {
        let mut s = DepSet::new();
        for r in rows {
            s.insert(DepVector::distances(r)).unwrap();
        }
        s
    }

    #[test]
    fn dedups_and_shares_storage() {
        let mut pool = Interner::new();
        let a = pool.intern(set(&[&[1, 0], &[0, 1]]));
        let b = pool.intern(set(&[&[1, 0], &[0, 1]]));
        let c = pool.intern(set(&[&[1, 1]]));
        assert_eq!(a.id, b.id);
        assert!(Arc::ptr_eq(&a.value, &b.value));
        assert_ne!(a.id, c.id);
        assert_eq!(pool.len(), 2);
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.collision_misses, 0);
    }

    #[test]
    fn forced_fingerprint_collision_is_rescued_by_exact_equality() {
        // File two *different* sets under the same fingerprint: the
        // verify must fail, the pool must keep both as distinct ids, and
        // the collision must be visible in the stats.
        let mut pool = Interner::new();
        let x = set(&[&[1, 0]]);
        let y = set(&[&[0, 1]]);
        assert_ne!(x, y);
        let fp = 0xdead_beef_u128;
        let ix = pool.intern_arc_with_fingerprint(fp, Arc::new(x.clone()));
        let iy = pool.intern_arc_with_fingerprint(fp, Arc::new(y.clone()));
        assert_ne!(ix.id, iy.id, "collision must not alias distinct values");
        assert_eq!(*ix.value, x);
        assert_eq!(*iy.value, y);
        let s = pool.stats();
        assert_eq!(s.len, 2);
        assert_eq!(s.hits, 0);
        assert_eq!(s.verifies, 1);
        assert_eq!(s.collision_misses, 1);

        // Re-interning either value under the colliding fingerprint
        // still finds its exact match (two verifies: miss then hit).
        let iy2 = pool.intern_arc_with_fingerprint(fp, Arc::new(y));
        assert_eq!(iy2.id, iy.id);
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.verifies, 3);
        assert_eq!(s.collision_misses, 2);
    }

    #[test]
    fn get_returns_canonical_arc() {
        let mut pool = Interner::new();
        let a = pool.intern(set(&[&[2]]));
        assert!(Arc::ptr_eq(pool.get(a.id), &a.value));
    }
}
