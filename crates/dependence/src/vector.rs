//! Dependence vectors (paper §3.1).
//!
//! A dependence vector for a nest of size `n` is an `n`-tuple
//! `d = (d_1, …, d_n)` where each entry is either a *distance* (an exact
//! integer) or one of the six *direction* values
//! `+  −  ⁺₀ (non-negative)  ⁻₀ (non-positive)  ± (non-zero)  * (any)`.
//! `S(d_k)` denotes the set of integers an entry stands for, and
//! `Tuples(d) = S(d_1) × … × S(d_n)`.

use std::fmt;

/// One of the six direction values of Definition 3.1.
///
/// A zero distance is represented as [`DepElem::Dist`]`(0)`, not as a
/// direction (the paper: "we do not represent an `=` direction … because it
/// is equivalent to a zero distance").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dir {
    /// `+` — strictly positive.
    Pos,
    /// `−` — strictly negative.
    Neg,
    /// `⁺₀` / `≥` — non-negative (a *summary* value).
    NonNeg,
    /// `⁻₀` / `≤` — non-positive (a *summary* value).
    NonPos,
    /// `±` / `≠` — non-zero (a *summary* value).
    NonZero,
    /// `*` — any integer (a *summary* value).
    Any,
}

impl Dir {
    /// All six direction values.
    pub const ALL: [Dir; 6] = [
        Dir::Pos,
        Dir::Neg,
        Dir::NonNeg,
        Dir::NonPos,
        Dir::NonZero,
        Dir::Any,
    ];

    /// True for the four *summary* values (`≥ ≤ ≠ *`) that stand for more
    /// than one sign class; the paper recommends expanding them away for
    /// maximum precision.
    pub fn is_summary(self) -> bool {
        matches!(self, Dir::NonNeg | Dir::NonPos | Dir::NonZero | Dir::Any)
    }
}

/// One entry of a dependence vector: an exact distance or a direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DepElem {
    /// An exact integer distance.
    Dist(i64),
    /// A direction value (imprecise: "used when the exact dependence
    /// distance is unknown").
    Dir(Dir),
}

impl DepElem {
    /// The zero distance (the paper's `=`).
    pub const ZERO: DepElem = DepElem::Dist(0);
    /// Shorthand for `Dir(Pos)`.
    pub const POS: DepElem = DepElem::Dir(Dir::Pos);
    /// Shorthand for `Dir(Neg)`.
    pub const NEG: DepElem = DepElem::Dir(Dir::Neg);
    /// Shorthand for `Dir(Any)`.
    pub const ANY: DepElem = DepElem::Dir(Dir::Any);

    /// Membership in `S(d_k)`: does the entry admit integer `x`?
    ///
    /// # Examples
    ///
    /// ```
    /// use irlt_dependence::{DepElem, Dir};
    ///
    /// assert!(DepElem::Dist(3).contains(3));
    /// assert!(!DepElem::Dist(3).contains(2));
    /// assert!(DepElem::Dir(Dir::NonNeg).contains(0));
    /// assert!(!DepElem::Dir(Dir::Pos).contains(0));
    /// ```
    pub fn contains(self, x: i64) -> bool {
        match self {
            DepElem::Dist(y) => x == y,
            DepElem::Dir(Dir::Pos) => x > 0,
            DepElem::Dir(Dir::Neg) => x < 0,
            DepElem::Dir(Dir::NonNeg) => x >= 0,
            DepElem::Dir(Dir::NonPos) => x <= 0,
            DepElem::Dir(Dir::NonZero) => x != 0,
            DepElem::Dir(Dir::Any) => true,
        }
    }

    /// Can the entry take the value zero?
    pub fn can_zero(self) -> bool {
        self.contains(0)
    }

    /// Can the entry take a strictly positive value?
    pub fn can_pos(self) -> bool {
        match self {
            DepElem::Dist(y) => y > 0,
            DepElem::Dir(d) => !matches!(d, Dir::Neg | Dir::NonPos),
        }
    }

    /// Can the entry take a strictly negative value?
    pub fn can_neg(self) -> bool {
        match self {
            DepElem::Dist(y) => y < 0,
            DepElem::Dir(d) => !matches!(d, Dir::Pos | Dir::NonNeg),
        }
    }

    /// True if `S(self)` is a singleton (an exact distance).
    pub fn is_distance(self) -> bool {
        matches!(self, DepElem::Dist(_))
    }

    /// True if the entry is a summary direction (`≥ ≤ ≠ *`).
    pub fn is_summary(self) -> bool {
        matches!(self, DepElem::Dir(d) if d.is_summary())
    }

    /// The entry's *direction abstraction* `dir(d_k)` (used by the `Block`
    /// mapping rule): distances collapse to their sign, directions stay.
    pub fn dir(self) -> DepElem {
        match self {
            DepElem::Dist(y) if y > 0 => DepElem::POS,
            DepElem::Dist(y) if y < 0 => DepElem::NEG,
            other => other,
        }
    }

    /// Table 2's `reverse(d_k)`: negate the set of values.
    ///
    /// ```text
    /// d_k         | y | + | − | ≥ | ≤ | ≠ | *
    /// reverse(d_k)| −y| − | + | ≤ | ≥ | ≠ | *
    /// ```
    pub fn reverse(self) -> DepElem {
        match self {
            DepElem::Dist(y) => DepElem::Dist(-y),
            DepElem::Dir(Dir::Pos) => DepElem::NEG,
            DepElem::Dir(Dir::Neg) => DepElem::POS,
            DepElem::Dir(Dir::NonNeg) => DepElem::Dir(Dir::NonPos),
            DepElem::Dir(Dir::NonPos) => DepElem::Dir(Dir::NonNeg),
            d @ DepElem::Dir(Dir::NonZero) | d @ DepElem::Dir(Dir::Any) => d,
        }
    }

    /// Least upper bound of two entries in the (sign-class) lattice: the
    /// most precise entry whose value set contains both.
    ///
    /// Exact distances are preserved when equal; otherwise the result is
    /// the smallest direction covering both sign classes. This is the
    /// pairwise step of the `Coalesce` rule's `mergedirs` (Table 2).
    ///
    /// # Examples
    ///
    /// ```
    /// use irlt_dependence::{DepElem, Dir};
    ///
    /// assert_eq!(DepElem::Dist(2).merge(DepElem::Dist(2)), DepElem::Dist(2));
    /// assert_eq!(
    ///     DepElem::Dir(Dir::Pos).merge(DepElem::Dist(0)),
    ///     DepElem::Dir(Dir::NonNeg)
    /// );
    /// assert_eq!(
    ///     DepElem::Dir(Dir::Pos).merge(DepElem::Dir(Dir::Neg)),
    ///     DepElem::Dir(Dir::NonZero)
    /// );
    /// ```
    pub fn merge(self, other: DepElem) -> DepElem {
        if self == other {
            return self;
        }
        let neg = self.can_neg() || other.can_neg();
        let zero = self.can_zero() || other.can_zero();
        let pos = self.can_pos() || other.can_pos();
        DepElem::from_sign_classes(neg, zero, pos)
    }

    /// Builds the most precise entry covering the given sign classes.
    ///
    /// # Panics
    ///
    /// Panics if all three flags are false (the empty set is not a
    /// dependence entry).
    pub fn from_sign_classes(neg: bool, zero: bool, pos: bool) -> DepElem {
        match (neg, zero, pos) {
            (false, false, false) => panic!("empty sign-class set"),
            (true, false, false) => DepElem::NEG,
            (false, true, false) => DepElem::ZERO,
            (false, false, true) => DepElem::POS,
            (true, true, false) => DepElem::Dir(Dir::NonPos),
            (false, true, true) => DepElem::Dir(Dir::NonNeg),
            (true, false, true) => DepElem::Dir(Dir::NonZero),
            (true, true, true) => DepElem::ANY,
        }
    }

    /// Is `S(self) ⊆ S(other)`?
    pub fn subsumed_by(self, other: DepElem) -> bool {
        match (self, other) {
            (DepElem::Dist(a), b) => b.contains(a),
            (DepElem::Dir(_), DepElem::Dist(_)) => false,
            (a @ DepElem::Dir(_), b @ DepElem::Dir(_)) => {
                // Compare by sign classes: a set is included iff its sign
                // classes are.
                (!a.can_neg() || b.can_neg())
                    && (!a.can_zero() || b.can_zero())
                    && (!a.can_pos() || b.can_pos())
            }
        }
    }

    /// Renders in the appendix's compact notation: `=` for the zero
    /// distance, signed integers for other distances, `+ − ≥ ≤ ≠ *` for
    /// directions (ASCII: `+ - >= <= != *`).
    pub fn paper_str(self) -> String {
        match self {
            DepElem::Dist(0) => "=".to_string(),
            DepElem::Dist(y) => y.to_string(),
            DepElem::Dir(Dir::Pos) => "+".to_string(),
            DepElem::Dir(Dir::Neg) => "-".to_string(),
            DepElem::Dir(Dir::NonNeg) => ">=".to_string(),
            DepElem::Dir(Dir::NonPos) => "<=".to_string(),
            DepElem::Dir(Dir::NonZero) => "!=".to_string(),
            DepElem::Dir(Dir::Any) => "*".to_string(),
        }
    }
}

impl fmt::Display for DepElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepElem::Dist(y) => write!(f, "{y}"),
            DepElem::Dir(Dir::Pos) => f.write_str("+"),
            DepElem::Dir(Dir::Neg) => f.write_str("-"),
            DepElem::Dir(Dir::NonNeg) => f.write_str(">="),
            DepElem::Dir(Dir::NonPos) => f.write_str("<="),
            DepElem::Dir(Dir::NonZero) => f.write_str("!="),
            DepElem::Dir(Dir::Any) => f.write_str("*"),
        }
    }
}

impl From<i64> for DepElem {
    fn from(y: i64) -> Self {
        DepElem::Dist(y)
    }
}

impl From<Dir> for DepElem {
    fn from(d: Dir) -> Self {
        DepElem::Dir(d)
    }
}

/// A dependence vector: one [`DepElem`] per loop, outermost first.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DepVector(pub Vec<DepElem>);

impl DepVector {
    /// Creates a vector from entries.
    pub fn new(elems: Vec<DepElem>) -> DepVector {
        DepVector(elems)
    }

    /// Creates a pure-distance vector.
    ///
    /// # Examples
    ///
    /// ```
    /// use irlt_dependence::DepVector;
    ///
    /// let d = DepVector::distances(&[1, -1]);
    /// assert_eq!(d.to_string(), "(1, -1)");
    /// ```
    pub fn distances(values: &[i64]) -> DepVector {
        DepVector(values.iter().map(|&v| DepElem::Dist(v)).collect())
    }

    /// Number of entries (the nest size `n`).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The entries.
    pub fn elems(&self) -> &[DepElem] {
        &self.0
    }

    /// Membership of an integer tuple in `Tuples(d)`.
    ///
    /// # Panics
    ///
    /// Panics if `tuple.len() != self.len()`.
    pub fn contains_tuple(&self, tuple: &[i64]) -> bool {
        assert_eq!(tuple.len(), self.len(), "tuple arity mismatch");
        self.0.iter().zip(tuple).all(|(e, &x)| e.contains(x))
    }

    /// Does `Tuples(d)` contain a **lexicographically negative** tuple
    /// (Definition 3.2: first nonzero element negative)?
    ///
    /// Entries are independent (a Cartesian product), so this holds iff for
    /// some position `k`, entries `1..k` can all be zero and entry `k` can
    /// be negative.
    ///
    /// # Examples
    ///
    /// ```
    /// use irlt_dependence::{DepElem, DepVector, Dir};
    ///
    /// // (−1, 1): lexicographically negative outright.
    /// assert!(DepVector::distances(&[-1, 1]).can_be_lex_negative());
    /// // (0, +): always positive.
    /// assert!(!DepVector::new(vec![DepElem::ZERO, DepElem::POS]).can_be_lex_negative());
    /// // (≥, −): 0 then negative is admissible.
    /// assert!(DepVector::new(vec![DepElem::Dir(Dir::NonNeg), DepElem::NEG])
    ///     .can_be_lex_negative());
    /// ```
    pub fn can_be_lex_negative(&self) -> bool {
        for e in &self.0 {
            if e.can_neg() {
                return true;
            }
            if !e.can_zero() {
                // This entry is forced strictly positive; every tuple is
                // lexicographically positive from here on.
                return false;
            }
        }
        false
    }

    /// Does `Tuples(d)` contain a lexicographically positive tuple?
    pub fn can_be_lex_positive(&self) -> bool {
        for e in &self.0 {
            if e.can_pos() {
                return true;
            }
            if !e.can_zero() {
                return false;
            }
        }
        false
    }

    /// Is every tuple of `Tuples(d)` lexicographically positive?
    /// (Equivalently: the vector admits neither the zero tuple nor any
    /// lexicographically negative tuple.)
    pub fn always_lex_positive(&self) -> bool {
        !self.can_be_lex_negative() && !self.can_be_zero()
    }

    /// Can the vector be the all-zero tuple?
    pub fn can_be_zero(&self) -> bool {
        self.0.iter().all(|e| e.can_zero())
    }

    /// Componentwise [`DepElem::reverse`] where `mask[k]` is true.
    ///
    /// # Panics
    ///
    /// Panics if `mask.len() != self.len()`.
    pub fn reverse_masked(&self, mask: &[bool]) -> DepVector {
        assert_eq!(mask.len(), self.len(), "mask arity mismatch");
        DepVector(
            self.0
                .iter()
                .zip(mask)
                .map(|(e, &rev)| if rev { e.reverse() } else { *e })
                .collect(),
        )
    }

    /// Applies a permutation: entry `k` of the result is
    /// `self[inverse_perm[k]]`; i.e. `perm[i]` gives the new position of
    /// old entry `i` (the paper's `d'_{perm[k]} = d_k`).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..self.len()`.
    pub fn permute(&self, perm: &[usize]) -> DepVector {
        assert_eq!(perm.len(), self.len(), "permutation arity mismatch");
        let mut out = vec![None; self.len()];
        for (old, &new) in perm.iter().enumerate() {
            assert!(out[new].is_none(), "perm is not a permutation");
            out[new] = Some(self.0[old]);
        }
        DepVector(out.into_iter().map(|e| e.expect("perm is total")).collect())
    }

    /// Is `Tuples(self) ⊆ Tuples(other)` componentwise?
    pub fn subsumed_by(&self, other: &DepVector) -> bool {
        self.len() == other.len() && self.0.iter().zip(&other.0).all(|(a, b)| a.subsumed_by(*b))
    }

    /// The levels that could *carry* this dependence, in the
    /// Allen–Kennedy sense the paper's related-work section builds on:
    /// level `p` is possible iff entries `1..p` can all be zero and entry
    /// `p` can be positive. A vector that can be entirely zero may also be
    /// loop-independent (not carried by any level).
    ///
    /// # Examples
    ///
    /// ```
    /// use irlt_dependence::{DepElem, DepVector, Dir};
    ///
    /// assert_eq!(DepVector::distances(&[0, 2]).possible_carried_levels(), vec![1]);
    /// // (≥, +): carried at level 0 (if the first entry is positive) or
    /// // level 1 (if it is zero).
    /// let v = DepVector::new(vec![DepElem::Dir(Dir::NonNeg), DepElem::POS]);
    /// assert_eq!(v.possible_carried_levels(), vec![0, 1]);
    /// ```
    pub fn possible_carried_levels(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (p, e) in self.0.iter().enumerate() {
            if e.can_pos() {
                out.push(p);
            }
            if !e.can_zero() {
                break;
            }
        }
        out
    }

    /// The single level that *definitely* carries this dependence, when
    /// the vector pins it down: entries before are exactly zero and the
    /// entry at the level is strictly positive. `None` for imprecise or
    /// loop-independent vectors.
    pub fn carried_level(&self) -> Option<usize> {
        for (p, e) in self.0.iter().enumerate() {
            if e == &DepElem::ZERO {
                continue;
            }
            return (e.can_pos() && !e.can_zero() && !e.can_neg()).then_some(p);
        }
        None
    }

    /// Renders in the appendix's compact notation, e.g. `(=,=,+)`.
    pub fn paper_str(&self) -> String {
        let inner: Vec<String> = self.0.iter().map(|e| e.paper_str()).collect();
        format!("({})", inner.join(","))
    }
}

impl fmt::Display for DepVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (k, e) in self.0.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<DepElem> for DepVector {
    fn from_iter<T: IntoIterator<Item = DepElem>>(iter: T) -> Self {
        DepVector(iter.into_iter().collect())
    }
}

/// A dependence entry / vector / set failed to parse from its
/// [`fmt::Display`] form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DepParseError {
    /// Explanation, quoting the offending token.
    pub message: String,
}

impl fmt::Display for DepParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dependence parse error: {}", self.message)
    }
}

impl std::error::Error for DepParseError {}

pub(crate) fn parse_err(message: impl Into<String>) -> DepParseError {
    DepParseError {
        message: message.into(),
    }
}

impl std::str::FromStr for DepElem {
    type Err = DepParseError;

    /// Parses the [`fmt::Display`] form of an entry: an integer distance
    /// or one of `+  -  >=  <=  !=  *`.
    fn from_str(s: &str) -> Result<DepElem, DepParseError> {
        match s.trim() {
            "+" => Ok(DepElem::Dir(Dir::Pos)),
            "-" => Ok(DepElem::Dir(Dir::Neg)),
            ">=" => Ok(DepElem::Dir(Dir::NonNeg)),
            "<=" => Ok(DepElem::Dir(Dir::NonPos)),
            "!=" => Ok(DepElem::Dir(Dir::NonZero)),
            "*" => Ok(DepElem::Dir(Dir::Any)),
            t => t
                .parse::<i64>()
                .map(DepElem::Dist)
                .map_err(|_| parse_err(format!("bad dependence entry `{t}`"))),
        }
    }
}

impl std::str::FromStr for DepVector {
    type Err = DepParseError;

    /// Parses the [`fmt::Display`] form of a vector: comma-separated
    /// entries, with or without the surrounding parentheses —
    /// `"(1, +, *)"` and `"1, +, *"` both parse. The parse∘print
    /// fixpoint `v.to_string().parse() == v` holds for every vector.
    fn from_str(s: &str) -> Result<DepVector, DepParseError> {
        let t = s.trim();
        let inner = match t.strip_prefix('(') {
            Some(rest) => rest
                .strip_suffix(')')
                .ok_or_else(|| parse_err(format!("unterminated `(` in `{t}`")))?,
            None => t,
        };
        let inner = inner.trim();
        if inner.is_empty() {
            return Err(parse_err("empty dependence vector"));
        }
        inner
            .split(',')
            .map(|tok| tok.parse::<DepElem>())
            .collect::<Result<Vec<_>, _>>()
            .map(DepVector::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_is_the_inverse_of_display() {
        let v = DepVector::new(vec![
            DepElem::Dist(-3),
            DepElem::Dist(0),
            DepElem::Dir(Dir::Pos),
            DepElem::Dir(Dir::Neg),
            DepElem::Dir(Dir::NonNeg),
            DepElem::Dir(Dir::NonPos),
            DepElem::Dir(Dir::NonZero),
            DepElem::Dir(Dir::Any),
        ]);
        let text = v.to_string();
        assert_eq!(text.parse::<DepVector>().unwrap(), v);
        // Parens are optional, whitespace is forgiven.
        assert_eq!(" 1 ,  + , * ".parse::<DepVector>().unwrap().len(), 3);
        // Malformed inputs are rejected with the offending token named.
        assert!("(1, %)"
            .parse::<DepVector>()
            .unwrap_err()
            .message
            .contains('%'));
        assert!("(1, 2".parse::<DepVector>().is_err());
        assert!("()".parse::<DepVector>().is_err());
        assert!("q".parse::<DepElem>().is_err());
    }

    #[test]
    fn membership_semantics() {
        for x in -3..=3 {
            assert_eq!(DepElem::Dist(2).contains(x), x == 2);
            assert_eq!(DepElem::POS.contains(x), x > 0);
            assert_eq!(DepElem::NEG.contains(x), x < 0);
            assert_eq!(DepElem::Dir(Dir::NonNeg).contains(x), x >= 0);
            assert_eq!(DepElem::Dir(Dir::NonPos).contains(x), x <= 0);
            assert_eq!(DepElem::Dir(Dir::NonZero).contains(x), x != 0);
            assert!(DepElem::ANY.contains(x));
        }
    }

    #[test]
    fn sign_class_queries_agree_with_membership() {
        let all = [
            DepElem::Dist(-2),
            DepElem::Dist(0),
            DepElem::Dist(5),
            DepElem::POS,
            DepElem::NEG,
            DepElem::Dir(Dir::NonNeg),
            DepElem::Dir(Dir::NonPos),
            DepElem::Dir(Dir::NonZero),
            DepElem::ANY,
        ];
        for e in all {
            assert_eq!(e.can_zero(), e.contains(0), "{e}");
            assert_eq!(e.can_pos(), (1..100).any(|x| e.contains(x)), "{e}");
            assert_eq!(e.can_neg(), (-100..0).any(|x| e.contains(x)), "{e}");
        }
    }

    #[test]
    fn reverse_negates_value_sets() {
        let all = [
            DepElem::Dist(-2),
            DepElem::Dist(0),
            DepElem::Dist(5),
            DepElem::POS,
            DepElem::NEG,
            DepElem::Dir(Dir::NonNeg),
            DepElem::Dir(Dir::NonPos),
            DepElem::Dir(Dir::NonZero),
            DepElem::ANY,
        ];
        for e in all {
            let r = e.reverse();
            for x in -10..=10 {
                assert_eq!(r.contains(x), e.contains(-x), "{e} reversed at {x}");
            }
            assert_eq!(r.reverse(), e, "involution");
        }
    }

    #[test]
    fn dir_abstraction() {
        assert_eq!(DepElem::Dist(7).dir(), DepElem::POS);
        assert_eq!(DepElem::Dist(-7).dir(), DepElem::NEG);
        assert_eq!(DepElem::Dist(0).dir(), DepElem::ZERO);
        assert_eq!(DepElem::ANY.dir(), DepElem::ANY);
    }

    #[test]
    fn merge_is_lub() {
        assert_eq!(DepElem::Dist(1).merge(DepElem::Dist(2)), DepElem::POS);
        assert_eq!(
            DepElem::Dist(-1).merge(DepElem::Dist(0)),
            DepElem::Dir(Dir::NonPos)
        );
        assert_eq!(DepElem::Dist(3).merge(DepElem::Dist(3)), DepElem::Dist(3));
        assert_eq!(DepElem::POS.merge(DepElem::ZERO), DepElem::Dir(Dir::NonNeg));
        assert_eq!(DepElem::NEG.merge(DepElem::POS), DepElem::Dir(Dir::NonZero));
        assert_eq!(DepElem::Dir(Dir::NonNeg).merge(DepElem::NEG), DepElem::ANY);
        // Merge result always subsumes both inputs.
        let all = [
            DepElem::Dist(-1),
            DepElem::ZERO,
            DepElem::Dist(2),
            DepElem::POS,
            DepElem::NEG,
            DepElem::ANY,
        ];
        for a in all {
            for b in all {
                let m = a.merge(b);
                assert!(a.subsumed_by(m) && b.subsumed_by(m), "{a} {b} {m}");
            }
        }
    }

    #[test]
    fn subsumption() {
        assert!(DepElem::Dist(1).subsumed_by(DepElem::POS));
        assert!(!DepElem::POS.subsumed_by(DepElem::Dist(1)));
        assert!(DepElem::POS.subsumed_by(DepElem::Dir(Dir::NonNeg)));
        assert!(!DepElem::Dir(Dir::NonNeg).subsumed_by(DepElem::POS));
        assert!(DepElem::Dir(Dir::NonZero).subsumed_by(DepElem::ANY));
    }

    #[test]
    fn lex_negative_paper_figure2() {
        // Fig. 2: original D = {(1,−1), (0,+)} is legal (no lex-negative
        // tuple); interchanging gives (−1,1) which is lex-negative.
        assert!(!DepVector::distances(&[1, -1]).can_be_lex_negative());
        assert!(!DepVector::new(vec![DepElem::ZERO, DepElem::POS]).can_be_lex_negative());
        assert!(DepVector::distances(&[-1, 1]).can_be_lex_negative());
        // After reversing loop j then interchanging: (1,1) and (+,0) — legal.
        assert!(!DepVector::distances(&[1, 1]).can_be_lex_negative());
        assert!(!DepVector::new(vec![DepElem::POS, DepElem::ZERO]).can_be_lex_negative());
    }

    #[test]
    fn lex_negative_with_summaries() {
        // (*, 1): '*' admits −1, so lex-negative possible.
        assert!(DepVector::new(vec![DepElem::ANY, DepElem::Dist(1)]).can_be_lex_negative());
        // (+, *): first entry forced positive.
        assert!(!DepVector::new(vec![DepElem::POS, DepElem::ANY]).can_be_lex_negative());
        // (0, ≤): can be (0, −1).
        assert!(
            DepVector::new(vec![DepElem::ZERO, DepElem::Dir(Dir::NonPos)]).can_be_lex_negative()
        );
        // All-zero vector is not lexicographically negative.
        assert!(!DepVector::distances(&[0, 0]).can_be_lex_negative());
        assert!(DepVector::distances(&[0, 0]).can_be_zero());
    }

    #[test]
    fn lex_positive_queries() {
        assert!(DepVector::distances(&[0, 1]).can_be_lex_positive());
        assert!(DepVector::distances(&[0, 1]).always_lex_positive());
        assert!(!DepVector::distances(&[0, 0]).always_lex_positive());
        let v = DepVector::new(vec![DepElem::Dir(Dir::NonNeg)]);
        assert!(v.can_be_lex_positive());
        assert!(!v.always_lex_positive()); // admits 0
        assert!(!DepVector::distances(&[-1]).can_be_lex_positive());
    }

    #[test]
    fn brute_force_lex_agreement() {
        // Compare the O(n) tests against enumeration over a box.
        let entries = [
            DepElem::Dist(-1),
            DepElem::ZERO,
            DepElem::Dist(1),
            DepElem::POS,
            DepElem::NEG,
            DepElem::Dir(Dir::NonNeg),
            DepElem::Dir(Dir::NonPos),
            DepElem::Dir(Dir::NonZero),
            DepElem::ANY,
        ];
        for &a in &entries {
            for &b in &entries {
                let v = DepVector::new(vec![a, b]);
                let mut neg = false;
                let mut pos = false;
                for x in -3..=3_i64 {
                    for y in -3..=3_i64 {
                        if v.contains_tuple(&[x, y]) {
                            let lex_neg = x < 0 || (x == 0 && y < 0);
                            let lex_pos = x > 0 || (x == 0 && y > 0);
                            neg |= lex_neg;
                            pos |= lex_pos;
                        }
                    }
                }
                assert_eq!(v.can_be_lex_negative(), neg, "{v}");
                assert_eq!(v.can_be_lex_positive(), pos, "{v}");
            }
        }
    }

    #[test]
    fn permute_moves_entries() {
        // perm[i] = new position of old entry i.
        let v = DepVector::distances(&[1, 2, 3]);
        // Move entry 0 to position 2, entry 1 to 0, entry 2 to 1.
        let p = v.permute(&[2, 0, 1]);
        assert_eq!(p, DepVector::distances(&[2, 3, 1]));
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permute_rejects_non_permutation() {
        DepVector::distances(&[1, 2]).permute(&[0, 0]);
    }

    #[test]
    fn reverse_masked() {
        let v = DepVector::new(vec![DepElem::Dist(1), DepElem::POS]);
        let r = v.reverse_masked(&[false, true]);
        assert_eq!(r, DepVector::new(vec![DepElem::Dist(1), DepElem::NEG]));
    }

    #[test]
    fn carried_level_precise_and_imprecise() {
        assert_eq!(DepVector::distances(&[0, 3]).carried_level(), Some(1));
        assert_eq!(DepVector::distances(&[2, -1]).carried_level(), Some(0));
        assert_eq!(
            DepVector::new(vec![DepElem::POS, DepElem::ANY]).carried_level(),
            Some(0)
        );
        // Imprecise leader: could be level 0 or 1.
        let v = DepVector::new(vec![DepElem::Dir(Dir::NonNeg), DepElem::POS]);
        assert_eq!(v.carried_level(), None);
        assert_eq!(v.possible_carried_levels(), vec![0, 1]);
        // Loop-independent.
        assert_eq!(DepVector::distances(&[0, 0]).carried_level(), None);
        assert!(DepVector::distances(&[0, 0])
            .possible_carried_levels()
            .is_empty());
    }

    #[test]
    fn display_and_paper_notation() {
        let v = DepVector::new(vec![DepElem::ZERO, DepElem::POS, DepElem::Dist(-2)]);
        assert_eq!(v.to_string(), "(0, +, -2)");
        assert_eq!(v.paper_str(), "(=,+,-2)");
        let v = DepVector::new(vec![DepElem::Dir(Dir::NonZero), DepElem::ANY]);
        assert_eq!(v.to_string(), "(!=, *)");
        assert_eq!(v.paper_str(), "(!=,*)");
    }
}
