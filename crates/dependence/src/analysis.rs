//! Classical data-dependence analysis over a [`LoopNest`].
//!
//! The paper assumes "the original set of dependence vectors for a perfect
//! loop nest is computed using standard data dependence analysis
//! techniques" and cites Banerjee, Wolfe, Maydan–Hennessy–Lam, and
//! Goff–Kennedy–Tseng. This module implements those standard techniques
//! from scratch so the framework runs end-to-end from source text:
//!
//! * **ZIV** — dimensions without index variables refute or pass trivially;
//! * **strong SIV** — equal-coefficient single-index dimensions force an
//!   exact distance;
//! * **MIV** — everything else is tested per *direction vector* (the
//!   `<`/`=`/`>` hierarchy of Wolfe) with the **GCD** test and **Banerjee**
//!   extreme-value bounds under the direction constraints;
//! * non-affine subscripts (including indirect accesses like
//!   `B(rowidx(k))`) fall back to the conservative set of all
//!   lexicographically positive direction vectors.
//!
//! Results are *index-space* differences converted to *iteration-space*
//! dependence distances using the loop steps (exact for constant steps,
//! conservative otherwise). Only lexicographically positive vectors are
//! emitted: a lexicographically negative candidate for the ordered pair
//! (A, B) reappears as a positive one for (B, A), and the all-zero vector
//! (a loop-independent dependence) does not constrain iteration reordering.

use crate::set::DepSet;
use crate::vector::{DepElem, DepVector};
use irlt_ir::{linear_form, AccessKind, ArrayRef, Expr, LinearForm, LoopNest, Symbol};
use std::collections::BTreeMap;
use std::fmt;

/// The kind of a dependence, by source/sink access kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DepKind {
    /// Write → read (true dependence).
    Flow,
    /// Read → write.
    Anti,
    /// Write → write.
    Output,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DepKind::Flow => "flow",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
        })
    }
}

/// One discovered dependence: kind, array, and the dependence vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dependence {
    /// Flow, anti, or output.
    pub kind: DepKind,
    /// The array both accesses touch.
    pub array: Symbol,
    /// Iteration-space dependence vector (lexicographically positive).
    pub vector: DepVector,
}

impl fmt::Display for Dependence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} dependence on {}: {}",
            self.kind, self.array, self.vector
        )
    }
}

/// Computes the dependence set of a nest (vectors only).
///
/// # Examples
///
/// ```
/// use irlt_ir::parse_nest;
/// use irlt_dependence::{analyze_dependences, DepVector};
///
/// // Fig. 1(a): five-point stencil. Flow dependences (1,0) and (0,1),
/// // anti dependences (1,0) and (0,1) from the i+1/j+1 reads.
/// let nest = parse_nest(
///     "do i = 2, n - 1\n  do j = 2, n - 1\n    a(i, j) = (a(i, j) + a(i - 1, j) + a(i, j - 1) + a(i + 1, j) + a(i, j + 1)) / 5\n  enddo\nenddo",
/// ).unwrap();
/// let deps = analyze_dependences(&nest);
/// assert!(deps.vectors().contains(&DepVector::distances(&[1, 0])));
/// assert!(deps.vectors().contains(&DepVector::distances(&[0, 1])));
/// assert!(deps.is_legal());
/// ```
pub fn analyze_dependences(nest: &LoopNest) -> DepSet {
    let mut set = DepSet::new();
    for dep in analyze_dependences_detailed(nest) {
        set.insert(dep.vector).expect("uniform arity from one nest");
    }
    set
}

/// Computes all dependences of a nest with kind and array attribution.
pub fn analyze_dependences_detailed(nest: &LoopNest) -> Vec<Dependence> {
    let indices = nest.index_vars();
    let bounds: Vec<IndexRange> = nest
        .loops()
        .iter()
        .map(|l| {
            let (a, b) = (l.lower.as_const(), l.upper.as_const());
            // A descending loop (`do i = 100, 1, -1`) still ranges over
            // [min, max] as a set of index values.
            match (a, b) {
                (Some(x), Some(y)) => IndexRange {
                    lo: Some(x.min(y)),
                    hi: Some(x.max(y)),
                },
                _ => IndexRange { lo: a, hi: b },
            }
        })
        .collect();
    let steps: Vec<Option<i64>> = nest.loops().iter().map(|l| l.step.as_const()).collect();

    // Group references by array.
    let mut by_array: BTreeMap<Symbol, Vec<(ArrayRef, AccessKind)>> = BTreeMap::new();
    for stmt in nest.body() {
        for (r, kind) in stmt.array_refs() {
            by_array
                .entry(r.array.clone())
                .or_default()
                .push((r.clone(), kind));
        }
    }

    let mut out: Vec<Dependence> = Vec::new();
    for (array, refs) in &by_array {
        for (ia, (ra, ka)) in refs.iter().enumerate() {
            for (ib, (rb, kb)) in refs.iter().enumerate() {
                // At least one write; consider every ordered pair once
                // (including a ref against itself for write-write), and let
                // the lex-positivity filter pick the true source.
                if *ka != AccessKind::Write && *kb != AccessKind::Write {
                    continue;
                }
                // For the self-pair, analyze once (ia == ib only when the
                // same occurrence is compared with itself).
                if ia > ib && ra == rb && ka == kb {
                    continue;
                }
                let kind = match (ka, kb) {
                    (AccessKind::Write, AccessKind::Read) => DepKind::Flow,
                    (AccessKind::Read, AccessKind::Write) => DepKind::Anti,
                    (AccessKind::Write, AccessKind::Write) => DepKind::Output,
                    _ => unreachable!("one side is a write"),
                };
                for vector in pair_dependences(ra, rb, &indices, &bounds, &steps) {
                    let dep = Dependence {
                        kind,
                        array: array.clone(),
                        vector,
                    };
                    if !out.contains(&dep) {
                        out.push(dep);
                    }
                }
            }
        }
    }
    out
}

/// A (possibly half-open) constant range of an index variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct IndexRange {
    lo: Option<i64>,
    hi: Option<i64>,
}

impl IndexRange {
    fn finite(self) -> Option<(i64, i64)> {
        match (self.lo, self.hi) {
            (Some(l), Some(h)) => Some((l, h)),
            _ => None,
        }
    }
}

/// Dependence vectors for one ordered pair of references (index-value space
/// converted to iteration space). Only lexicographically positive vectors
/// are returned.
fn pair_dependences(
    src: &ArrayRef,
    dst: &ArrayRef,
    indices: &[Symbol],
    bounds: &[IndexRange],
    steps: &[Option<i64>],
) -> Vec<DepVector> {
    let n = indices.len();
    if src.subscripts.len() != dst.subscripts.len() {
        // Dimension mismatch (e.g. linearized vs. not): be conservative.
        return conservative_vectors(n);
    }
    // Extract one linear equation per dimension:
    //   Σ a_k·s_k − Σ b_k·t_k = c   where s = source iter, t = sink iter.
    let mut dims: Vec<DimEquation> = Vec::with_capacity(src.subscripts.len());
    for (es, ed) in src.subscripts.iter().zip(&dst.subscripts) {
        match (linear_form(es, indices), linear_form(ed, indices)) {
            (Some(fs), Some(fd)) => {
                // c = rest_d − rest_s must be a compile-time constant to
                // constrain anything; a symbolic difference that folds to 0
                // (identical invariant parts) is the common case.
                let diff = Expr::sub(fd.rest.clone(), fs.rest.clone());
                match diff.as_const() {
                    Some(c) => dims.push(DimEquation::linear(&fs, &fd, c, indices)),
                    None => dims.push(DimEquation::Unknown),
                }
            }
            _ => dims.push(DimEquation::Unknown),
        }
    }
    if dims.iter().all(|d| matches!(d, DimEquation::Unknown)) {
        return conservative_vectors(n);
    }

    // Per-index forced distances from strong-SIV dimensions; `None` entry
    // means unconstrained-by-SIV.
    let mut forced: Vec<Option<i64>> = vec![None; n];
    let mut equations: Vec<(Vec<i64>, Vec<i64>, i64)> = Vec::new();
    for dim in &dims {
        match dim {
            DimEquation::Unknown => {}
            DimEquation::Ziv { c } => {
                if *c != 0 {
                    return Vec::new(); // constant subscripts differ: no dep
                }
            }
            DimEquation::StrongSiv { index, coeff, c } => {
                // a·s_k − a·t_k = c  ⇒  d_k = t_k − s_k = −c/a.
                if c % coeff != 0 {
                    return Vec::new();
                }
                let d = -(c / coeff);
                match forced[*index] {
                    Some(prev) if prev != d => return Vec::new(),
                    _ => forced[*index] = Some(d),
                }
            }
            DimEquation::General { a, b, c } => {
                equations.push((a.clone(), b.clone(), *c));
            }
        }
    }

    // Enumerate sign-definite direction assignments (<, =, >) for every
    // index that is not forced to an exact distance. Sign-definite
    // candidates make the lexicographic filter exact: a candidate that is
    // lexicographically negative for this ordered pair is exactly the
    // mirror of a positive one for the swapped pair, and the all-zero
    // candidate is a loop-independent dependence that does not constrain
    // iteration reordering.
    let mut result: Vec<DepVector> = Vec::new();
    let mut theta: Vec<Theta> = vec![Theta::Free; n];
    enumerate_thetas(
        0,
        n,
        &forced,
        &mut theta,
        &equations,
        bounds,
        &mut |assignment| {
            if let Some(v) = vector_from_assignment(assignment, &forced, steps) {
                if !v.can_be_lex_negative() && !v.can_be_zero() && !result.contains(&v) {
                    result.push(v);
                }
            }
        },
    );
    summarize(result)
}

/// Merges sign-definite siblings back into summary entries to keep the set
/// small: whenever two vectors agree everywhere except one position and the
/// union of that position's value sets is exactly expressible as a single
/// entry, they are replaced by the merged vector (`{0,+} ↦ ≥`,
/// `{−,+} ↦ ≠`, …). Iterates to a fixed point; `Tuples` of the result
/// equals `Tuples` of the input because only exact merges are performed.
fn summarize(mut vectors: Vec<DepVector>) -> Vec<DepVector> {
    loop {
        let mut merged: Option<(usize, usize, DepVector)> = None;
        'scan: for i in 0..vectors.len() {
            for j in (i + 1)..vectors.len() {
                let (vi, vj) = (&vectors[i], &vectors[j]);
                let diff: Vec<usize> = (0..vi.len())
                    .filter(|&k| vi.elems()[k] != vj.elems()[k])
                    .collect();
                if let [k] = diff[..] {
                    if let Some(m) = merge_exact(vi.elems()[k], vj.elems()[k]) {
                        let mut elems = vi.elems().to_vec();
                        elems[k] = m;
                        merged = Some((i, j, DepVector::new(elems)));
                        break 'scan;
                    }
                }
            }
        }
        match merged {
            Some((i, j, nv)) => {
                vectors.remove(j);
                vectors.remove(i);
                if !vectors.contains(&nv) {
                    vectors.push(nv);
                }
            }
            None => return vectors,
        }
    }
}

/// Merges two entries only when the result's value set is *exactly* the
/// union of the inputs' (no over-approximation).
fn merge_exact(a: DepElem, b: DepElem) -> Option<DepElem> {
    let m = a.merge(b);
    if m.is_distance() {
        return Some(m);
    }
    // `m` is a direction: its positive/negative classes are full half-lines,
    // so each class it covers must already be fully covered by a direction
    // input (a single distance like `2` cannot supply the whole class).
    let covers = |e: DepElem, pos: bool| {
        matches!(e, DepElem::Dir(_)) && if pos { e.can_pos() } else { e.can_neg() }
    };
    let pos_ok = !m.can_pos() || covers(a, true) || covers(b, true);
    let neg_ok = !m.can_neg() || covers(a, false) || covers(b, false);
    (pos_ok && neg_ok).then_some(m)
}

/// Direction constraint on `d_k = t_k − s_k` during enumeration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Theta {
    /// `d_k > 0` (sink iteration later in this loop).
    Lt,
    /// `d_k = 0`.
    Eq,
    /// `d_k < 0`.
    Gt,
    /// Unconstrained (the entry is forced to an exact distance instead).
    Free,
}

#[derive(Clone, Debug)]
enum DimEquation {
    /// No index variables on either side: feasible iff `c == 0`.
    Ziv { c: i64 },
    /// One index `k`, equal nonzero coefficient on both sides.
    StrongSiv { index: usize, coeff: i64, c: i64 },
    /// The general multi-index case `Σ a_k s_k − Σ b_k t_k = c`.
    General { a: Vec<i64>, b: Vec<i64>, c: i64 },
    /// Non-affine or symbolically-offset dimension: no information.
    Unknown,
}

impl DimEquation {
    fn linear(fs: &LinearForm, fd: &LinearForm, c: i64, indices: &[Symbol]) -> DimEquation {
        let a: Vec<i64> = indices.iter().map(|v| fs.coeff(v)).collect();
        let b: Vec<i64> = indices.iter().map(|v| fd.coeff(v)).collect();
        let nz_a: Vec<usize> = (0..a.len()).filter(|&k| a[k] != 0).collect();
        let nz_b: Vec<usize> = (0..b.len()).filter(|&k| b[k] != 0).collect();
        if nz_a.is_empty() && nz_b.is_empty() {
            DimEquation::Ziv { c }
        } else if nz_a.len() == 1
            && nz_b.len() == 1
            && nz_a[0] == nz_b[0]
            && a[nz_a[0]] == b[nz_b[0]]
        {
            DimEquation::StrongSiv {
                index: nz_a[0],
                coeff: a[nz_a[0]],
                c,
            }
        } else {
            DimEquation::General { a, b, c }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn enumerate_thetas(
    k: usize,
    n: usize,
    forced: &[Option<i64>],
    theta: &mut Vec<Theta>,
    equations: &[(Vec<i64>, Vec<i64>, i64)],
    bounds: &[IndexRange],
    emit: &mut dyn FnMut(&[Theta]),
) {
    if k == n {
        if equations
            .iter()
            .all(|(a, b, c)| equation_feasible(a, b, *c, theta, forced, bounds))
        {
            emit(theta);
        }
        return;
    }
    if forced[k].is_some() {
        theta[k] = Theta::Free;
        enumerate_thetas(k + 1, n, forced, theta, equations, bounds, emit);
        return;
    }
    for t in [Theta::Lt, Theta::Eq, Theta::Gt] {
        theta[k] = t;
        enumerate_thetas(k + 1, n, forced, theta, equations, bounds, emit);
    }
    theta[k] = Theta::Free;
}

/// GCD + Banerjee feasibility of one equation under a direction assignment.
fn equation_feasible(
    a: &[i64],
    b: &[i64],
    c: i64,
    theta: &[Theta],
    forced: &[Option<i64>],
    bounds: &[IndexRange],
) -> bool {
    // Fold forced distances into the constant: with t_k = s_k + d_k,
    //   a_k s_k − b_k t_k = (a_k − b_k) s_k − b_k d_k.
    let mut c_eff = c;
    // GCD accumulator over remaining free coefficients.
    let mut g: i64 = 0;
    // Banerjee extreme values.
    let mut lo = Ext::Finite(0);
    let mut hi = Ext::Finite(0);
    for k in 0..theta.len() {
        let (ak, bk) = (a[k], b[k]);
        if ak == 0 && bk == 0 {
            continue;
        }
        if let Some(d) = forced[k] {
            // Contribution (a_k − b_k)·s_k − b_k·d over s_k ∈ I_k.
            c_eff += bk * d;
            let coeff = ak - bk;
            g = gcd(g, coeff.abs());
            let (tl, th) = scaled_range(coeff, bounds[k]);
            lo = lo.add(tl);
            hi = hi.add(th);
            continue;
        }
        match theta[k] {
            Theta::Eq => {
                let coeff = ak - bk;
                g = gcd(g, coeff.abs());
                let (tl, th) = scaled_range(coeff, bounds[k]);
                lo = lo.add(tl);
                hi = hi.add(th);
            }
            Theta::Lt | Theta::Gt | Theta::Free => {
                g = gcd(g, ak.abs());
                g = gcd(g, bk.abs());
                let rel = match theta[k] {
                    Theta::Lt => Rel::SinkLater,
                    Theta::Gt => Rel::SinkEarlier,
                    _ => Rel::None,
                };
                match pair_term_range(ak, bk, bounds[k], rel) {
                    Some((tl, th)) => {
                        lo = lo.add(tl);
                        hi = hi.add(th);
                    }
                    None => return false, // direction infeasible in bounds
                }
            }
        }
    }
    if g == 0 {
        if c_eff != 0 {
            return false;
        }
    } else if c_eff % g != 0 {
        return false;
    }
    lo.le_const(c_eff) && hi.ge_const(c_eff)
}

/// Extended integer with ±∞ for Banerjee accumulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Ext {
    NegInf,
    Finite(i64),
    PosInf,
}

impl Ext {
    fn add(self, other: Ext) -> Ext {
        match (self, other) {
            (Ext::Finite(x), Ext::Finite(y)) => Ext::Finite(x.saturating_add(y)),
            (Ext::NegInf, Ext::PosInf) | (Ext::PosInf, Ext::NegInf) => {
                unreachable!("mixed infinities are never summed: lo adds lo, hi adds hi")
            }
            (Ext::NegInf, _) | (_, Ext::NegInf) => Ext::NegInf,
            (Ext::PosInf, _) | (_, Ext::PosInf) => Ext::PosInf,
        }
    }

    fn le_const(self, c: i64) -> bool {
        match self {
            Ext::NegInf => true,
            Ext::Finite(x) => x <= c,
            Ext::PosInf => false,
        }
    }

    fn ge_const(self, c: i64) -> bool {
        match self {
            Ext::NegInf => false,
            Ext::Finite(x) => x >= c,
            Ext::PosInf => true,
        }
    }
}

/// Range of `coeff · x` for `x` in the (possibly half-open) index range.
fn scaled_range(coeff: i64, r: IndexRange) -> (Ext, Ext) {
    if coeff == 0 {
        return (Ext::Finite(0), Ext::Finite(0));
    }
    let lo = r.lo.map(Ext::Finite).unwrap_or(Ext::NegInf);
    let hi = r.hi.map(Ext::Finite).unwrap_or(Ext::PosInf);
    let scale = |e: Ext| match e {
        Ext::Finite(v) => Ext::Finite(coeff.saturating_mul(v)),
        inf => inf,
    };
    let (a, b) = (scale(lo), scale(hi));
    if coeff > 0 {
        (a, b)
    } else {
        let flip = |e: Ext| match e {
            Ext::NegInf => Ext::PosInf,
            Ext::PosInf => Ext::NegInf,
            f => f,
        };
        (flip(b), flip(a))
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Rel {
    /// `t = s + δ, δ ≥ 1` (sink iteration strictly later).
    SinkLater,
    /// `t = s − δ, δ ≥ 1`.
    SinkEarlier,
    /// Unrelated.
    None,
}

/// Range of `a·s − b·t` for `s, t` in range `r` under relation `rel`.
/// Returns `None` when the relation is infeasible within the range
/// (e.g. `t > s` in a single-point range).
fn pair_term_range(a: i64, b: i64, r: IndexRange, rel: Rel) -> Option<(Ext, Ext)> {
    match r.finite() {
        Some((l, u)) => {
            if l > u {
                return None;
            }
            let vertices: Vec<(i64, i64)> = match rel {
                Rel::None => vec![(l, l), (l, u), (u, l), (u, u)],
                Rel::SinkLater => {
                    if u < l + 1 {
                        return None;
                    }
                    vec![(l, l + 1), (l, u), (u - 1, u)]
                }
                Rel::SinkEarlier => {
                    if u < l + 1 {
                        return None;
                    }
                    vec![(l + 1, l), (u, l), (u, u - 1)]
                }
            };
            let vals: Vec<i64> = vertices
                .iter()
                .map(|&(s, t)| a.saturating_mul(s).saturating_sub(b.saturating_mul(t)))
                .collect();
            let lo = *vals.iter().min().expect("nonempty");
            let hi = *vals.iter().max().expect("nonempty");
            Some((Ext::Finite(lo), Ext::Finite(hi)))
        }
        None => {
            // Unbounded index range: no pruning from this term unless both
            // coefficients vanish.
            if a == 0 && b == 0 {
                Some((Ext::Finite(0), Ext::Finite(0)))
            } else {
                Some((Ext::NegInf, Ext::PosInf))
            }
        }
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Builds the iteration-space dependence vector for one feasible direction
/// assignment, converting index-space distances through the loop steps.
/// Returns `None` when a forced distance is incompatible with the step.
fn vector_from_assignment(
    theta: &[Theta],
    forced: &[Option<i64>],
    steps: &[Option<i64>],
) -> Option<DepVector> {
    let mut elems = Vec::with_capacity(theta.len());
    for k in 0..theta.len() {
        let idx_elem = match forced[k] {
            Some(d) => DepElem::Dist(d),
            None => match theta[k] {
                Theta::Lt => DepElem::POS,
                Theta::Eq => DepElem::ZERO,
                Theta::Gt => DepElem::NEG,
                Theta::Free => DepElem::ANY,
            },
        };
        elems.push(index_to_iteration(idx_elem, steps[k])?);
    }
    Some(DepVector::new(elems))
}

/// Converts an index-space difference to an iteration-space one for a loop
/// with the given (constant, if known) step.
fn index_to_iteration(e: DepElem, step: Option<i64>) -> Option<DepElem> {
    match step {
        Some(1) => Some(e),
        Some(s) if s != 0 => match e {
            DepElem::Dist(d) => {
                if d % s != 0 {
                    None // accesses can never meet across iterations
                } else {
                    Some(DepElem::Dist(d / s))
                }
            }
            DepElem::Dir(_) => Some(if s > 0 { e } else { e.reverse() }),
        },
        // Symbolic or zero step: sign of the iteration difference unknown.
        _ => Some(match e {
            DepElem::Dist(0) => DepElem::ZERO,
            _ => DepElem::ANY,
        }),
    }
}

/// All lexicographically positive direction vectors, summarized: one vector
/// per leading-zero prefix length.
fn conservative_vectors(n: usize) -> Vec<DepVector> {
    let mut out = Vec::with_capacity(n);
    for lead in 0..n {
        let mut elems = vec![DepElem::ZERO; lead];
        elems.push(DepElem::POS);
        elems.extend(std::iter::repeat_n(DepElem::ANY, n - lead - 1));
        out.push(DepVector::new(elems));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use irlt_dependence_dir_import::Dir;
    use irlt_ir::parse_nest;

    mod irlt_dependence_dir_import {
        pub use crate::vector::Dir;
    }

    fn vecs(src: &str) -> DepSet {
        analyze_dependences(&parse_nest(src).unwrap())
    }

    #[test]
    fn stencil_figure1a_distances() {
        let d = vecs(
            "do i = 2, n - 1\n do j = 2, n - 1\n  a(i, j) = (a(i, j) + a(i - 1, j) + a(i, j - 1) + a(i + 1, j) + a(i, j + 1)) / 5\n enddo\nenddo",
        );
        // Flow deps (1,0), (0,1) from the i−1 / j−1 reads; anti deps (1,0),
        // (0,1) from the i+1 / j+1 reads. As a vector set: {(1,0), (0,1)}.
        assert_eq!(d.len(), 2);
        assert!(d.vectors().contains(&DepVector::distances(&[1, 0])));
        assert!(d.vectors().contains(&DepVector::distances(&[0, 1])));
    }

    #[test]
    fn stencil_kinds() {
        let nest = parse_nest("do i = 2, n - 1\n a(i) = a(i - 1) + a(i + 1)\nenddo").unwrap();
        let deps = analyze_dependences_detailed(&nest);
        let kinds: Vec<(DepKind, DepVector)> =
            deps.iter().map(|d| (d.kind, d.vector.clone())).collect();
        assert!(kinds.contains(&(DepKind::Flow, DepVector::distances(&[1]))));
        assert!(kinds.contains(&(DepKind::Anti, DepVector::distances(&[1]))));
        // No output dependence: each element written once.
        assert!(!deps.iter().any(|d| d.kind == DepKind::Output));
    }

    #[test]
    fn matmul_reduction_dependences() {
        // A(i,j) accumulated over k: flow/anti/output on A with d = (0,0,+).
        let d = vecs(
            "do i = 1, n\n do j = 1, n\n  do k = 1, n\n   A(i, j) = A(i, j) + B(i, k) * C(k, j)\n  enddo\n enddo\nenddo",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(
            d.vectors()[0],
            DepVector::new(vec![DepElem::ZERO, DepElem::ZERO, DepElem::POS])
        );
    }

    #[test]
    fn independent_writes_no_dependences() {
        let d = vecs("do i = 1, n\n do j = 1, n\n  a(i, j) = b(i) + c(j)\n enddo\nenddo");
        assert!(d.is_empty());
    }

    #[test]
    fn output_dependence_from_repeated_write() {
        // a(i) written for every j: output dep (0,+).
        let d = vecs("do i = 1, n\n do j = 1, n\n  a(i) = j\n enddo\nenddo");
        assert_eq!(d.len(), 1);
        assert_eq!(
            d.vectors()[0],
            DepVector::new(vec![DepElem::ZERO, DepElem::POS])
        );
    }

    #[test]
    fn ziv_refutation() {
        // a(1) vs a(2): never the same element.
        let d = vecs("do i = 1, n\n a(1) = a(2) + 1\nenddo");
        // a(1)=… reads a(2): no flow between them; but a(1) written every
        // iteration: output dep (+). And the write/read of *different*
        // elements gives nothing.
        assert_eq!(d.len(), 1);
        assert_eq!(d.vectors()[0], DepVector::new(vec![DepElem::POS]));
    }

    #[test]
    fn gcd_refutation() {
        // a(2i) vs a(2i+1): even vs odd elements, never equal.
        let d = vecs("do i = 1, n\n a(2*i) = a(2*i + 1) + 1\nenddo");
        // Output dep of a(2i) with itself forces d=0 → dropped; read/write
        // pair refuted by GCD. Nothing remains.
        assert!(d.is_empty());
    }

    #[test]
    fn strong_siv_exact_distance() {
        let d = vecs("do i = 1, 100\n a(i + 5) = a(i) + 1\nenddo");
        assert_eq!(d.len(), 1);
        assert_eq!(d.vectors()[0], DepVector::distances(&[5]));
    }

    #[test]
    fn banerjee_bounds_refutation() {
        // a(i) vs a(i+200) in i ∈ [1,100]: distance 200 exceeds the range,
        // strong SIV forces d=200 but bounds make it impossible… strong SIV
        // doesn't check bounds, so use an MIV-shaped pair instead:
        // a(2*i) vs a(i+300) with i ∈ [1,100]: 2s = t+300 needs s ≥ 151.
        let d = vecs("do i = 1, 100\n a(2*i) = a(i + 300) + 1\nenddo");
        assert!(d.is_empty(), "got {d}");
    }

    #[test]
    fn coupled_miv_direction() {
        // a(i+j) = a(i+j-1): many (s,t) pairs; expect direction vectors.
        let d = vecs("do i = 1, 10\n do j = 1, 10\n  a(i + j) = a(i + j - 1) + 1\n enddo\nenddo");
        assert!(!d.is_empty());
        assert!(d.is_legal());
        // (0, 1) shift must be admitted.
        assert!(d.contains_tuple(&[0, 1]), "{d}");
        // (1, -1): same element via i+1, j-1 ⇒ tuple (1,-1) admitted after
        // accounting for the −1 offset… the offset makes it (1, 0):
        assert!(d.contains_tuple(&[1, 0]), "{d}");
    }

    #[test]
    fn nonlinear_subscript_conservative() {
        // Indirect write: x(idx(i)) = …; conservative vectors expected.
        let d = vecs("do i = 1, n\n x(idx(i)) = x(idx(i)) + 1\nenddo");
        assert_eq!(d.len(), 1);
        assert_eq!(d.vectors()[0], DepVector::new(vec![DepElem::POS]));
    }

    #[test]
    fn nonlinear_two_deep_conservative() {
        let d = vecs("do i = 1, n\n do j = 1, n\n  x(idx(i, j)) = 0\n enddo\nenddo");
        assert_eq!(d.len(), 2);
        assert!(d
            .vectors()
            .contains(&DepVector::new(vec![DepElem::POS, DepElem::ANY])));
        assert!(d
            .vectors()
            .contains(&DepVector::new(vec![DepElem::ZERO, DepElem::POS])));
    }

    #[test]
    fn symbolic_offset_is_conservative_but_sound() {
        // a(i) vs a(i+m): unknown symbolic offset m.
        let d = vecs("do i = 1, n\n a(i) = a(i + m) + 1\nenddo");
        // Sound: must admit every distance the offset could produce.
        assert!(d.contains_tuple(&[1]));
        assert!(d.contains_tuple(&[7]));
    }

    #[test]
    fn non_unit_step_divisibility() {
        // step 2, read offset 3: index distance 3 not divisible by 2 ⇒ the
        // accesses interleave without meeting.
        let d = vecs("do i = 1, 100, 2\n a(i) = a(i - 3) + 1\nenddo");
        assert!(d.is_empty(), "got {d}");
        // offset 4: iteration distance 2.
        let d = vecs("do i = 1, 100, 2\n a(i) = a(i - 4) + 1\nenddo");
        assert_eq!(d.vectors(), [DepVector::distances(&[2])]);
    }

    #[test]
    fn negative_step_flips_direction() {
        // Descending loop: a(i) = a(i+1): sink reads element written by the
        // *previous* iteration (i+1 visited earlier) ⇒ flow dep, iteration
        // distance +1.
        let d = vecs("do i = 100, 1, -1\n a(i) = a(i + 1) + 1\nenddo");
        assert!(d.contains_tuple(&[1]), "{d}");
        assert!(d.is_legal());
    }

    #[test]
    fn triangular_nest_analyzed() {
        let d = vecs("do i = 1, n\n do j = 1, i\n  a(i, j) = a(i - 1, j) + 1\n enddo\nenddo");
        assert_eq!(d.vectors(), [DepVector::distances(&[1, 0])]);
    }

    #[test]
    fn figure2_loop_nest() {
        // Fig. 2(a): a(i,j) = b(j); b(j) = a(i−1, j+1) — two statements.
        // D = {(1,−1), (0,+)}: flow a → use with distance (1,−1); b is
        // written and read in the same iteration (loop-independent, not a
        // vector) and anti-dep of b across i iterations gives (0,+)… in our
        // single-statement-pair analysis, b(j) read then written across i:
        // (+, 0) with j equal — the paper reports (0,+) for the b accesses
        // ordered read-before-write *within* i… we reproduce the a-array
        // distance exactly.
        let d = vecs(
            "do i = 2, n - 1\n do j = 2, n - 1\n  a(i, j) = b(j)\n  b(j) = a(i - 1, j + 1)\n enddo\nenddo",
        );
        assert!(d.vectors().contains(&DepVector::distances(&[1, -1])), "{d}");
        assert!(d.is_legal());
    }

    #[test]
    fn conservative_vectors_shape() {
        let v = conservative_vectors(3);
        assert_eq!(v.len(), 3);
        assert_eq!(v[0].to_string(), "(+, *, *)");
        assert_eq!(v[1].to_string(), "(0, +, *)");
        assert_eq!(v[2].to_string(), "(0, 0, +)");
        assert!(v.iter().all(|d| !d.can_be_lex_negative()));
    }

    #[test]
    fn summarize_merges_exact_siblings_only() {
        // {(0,−),(0,0),(0,+)} merges to {(0,*)}.
        let merged = summarize(vec![
            DepVector::new(vec![DepElem::ZERO, DepElem::NEG]),
            DepVector::new(vec![DepElem::ZERO, DepElem::ZERO]),
            DepVector::new(vec![DepElem::ZERO, DepElem::POS]),
        ]);
        assert_eq!(
            merged,
            vec![DepVector::new(vec![DepElem::ZERO, DepElem::ANY])]
        );
        // {(0,2),(0,0)} must NOT merge (2 is a point, not a half-line).
        let kept = summarize(vec![
            DepVector::new(vec![DepElem::ZERO, DepElem::Dist(2)]),
            DepVector::new(vec![DepElem::ZERO, DepElem::ZERO]),
        ]);
        assert_eq!(kept.len(), 2);
        // Vectors differing in two positions never merge.
        let kept = summarize(vec![
            DepVector::new(vec![DepElem::POS, DepElem::NEG]),
            DepVector::new(vec![DepElem::NEG, DepElem::POS]),
        ]);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn merge_exact_rules() {
        assert_eq!(
            merge_exact(DepElem::ZERO, DepElem::POS),
            Some(DepElem::Dir(Dir::NonNeg))
        );
        assert_eq!(
            merge_exact(DepElem::NEG, DepElem::POS),
            Some(DepElem::Dir(Dir::NonZero))
        );
        assert_eq!(
            merge_exact(DepElem::Dist(1), DepElem::POS),
            Some(DepElem::POS)
        );
        assert_eq!(merge_exact(DepElem::Dist(2), DepElem::ZERO), None);
        assert_eq!(merge_exact(DepElem::Dist(1), DepElem::Dist(2)), None);
        assert_eq!(
            merge_exact(DepElem::Dist(3), DepElem::Dist(3)),
            Some(DepElem::Dist(3))
        );
    }

    #[test]
    fn gcd_helper() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(0, 0), 0);
    }

    #[test]
    fn index_to_iteration_conversion() {
        assert_eq!(
            index_to_iteration(DepElem::Dist(4), Some(2)),
            Some(DepElem::Dist(2))
        );
        assert_eq!(index_to_iteration(DepElem::Dist(3), Some(2)), None);
        assert_eq!(
            index_to_iteration(DepElem::Dist(4), Some(-2)),
            Some(DepElem::Dist(-2))
        );
        assert_eq!(
            index_to_iteration(DepElem::POS, Some(-1)),
            Some(DepElem::NEG)
        );
        assert_eq!(index_to_iteration(DepElem::POS, None), Some(DepElem::ANY));
        assert_eq!(index_to_iteration(DepElem::ZERO, None), Some(DepElem::ZERO));
    }
}
