//! # irlt-dependence — dependence vectors and data-dependence analysis
//!
//! The dependence layer of **irlt** (Sarkar & Thekkath, PLDI 1992):
//!
//! * [`DepElem`] / [`Dir`] — distance and direction entries with the
//!   paper's `S(d_k)` value-set semantics (§3.1);
//! * [`DepVector`] / [`DepSet`] — dependence vectors and sets, with the
//!   `Tuples(D)` lexicographic legality test (§3.2) and summary-direction
//!   expansion;
//! * [`analyze_dependences`] — a from-scratch implementation of the
//!   "standard data dependence analysis techniques" the paper assumes
//!   (ZIV / strong SIV / GCD / Banerjee under direction-vector hierarchy).
//!
//! # Examples
//!
//! ```
//! use irlt_ir::parse_nest;
//! use irlt_dependence::{analyze_dependences, DepVector};
//!
//! let nest = parse_nest(
//!     "do i = 1, n\n  do j = 1, n\n    a(i, j) = a(i - 1, j) + 1\n  enddo\nenddo",
//! )?;
//! let deps = analyze_dependences(&nest);
//! assert_eq!(deps.vectors(), [DepVector::distances(&[1, 0])]);
//! assert!(deps.is_legal());
//! # Ok::<(), irlt_ir::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
pub mod fingerprint;
pub mod intern;
pub mod packed;
mod set;
mod vector;

pub use analysis::{analyze_dependences, analyze_dependences_detailed, DepKind, Dependence};
pub use fingerprint::{fp128, Fingerprint128, Fp128Hasher};
pub use intern::{Interned, Interner, InternerStats};
pub use packed::PackedDepVector;
pub use set::{ArityMismatch, DepSet};
pub use vector::{DepElem, DepParseError, DepVector, Dir};
