//! Bit-packed dependence vectors: the legality test on machine words.
//!
//! The paper's whole pitch is that iteration-reordering legality is a
//! *cheap mechanical test* over dependence vectors (§3.2). The boxed
//! representation — `DepVector(Vec<DepElem>)` — makes that test walk a
//! heap allocation per vector and branch per entry. This module packs a
//! vector into at most two `u64` words plus three precomputed sign-class
//! bitmasks, so the lexicographic tests become a handful of bit
//! operations with **no memory traversal at all**.
//!
//! # Encoding
//!
//! Each entry takes one byte (lane `k` = bits `8k..8k+8` of
//! `words[k / 8]`):
//!
//! | code | meaning |
//! |---|---|
//! | `0..=5` | the six [`Dir`] values, in [`Dir::ALL`] order |
//! | [`ESCAPE`] (6) | reserved — never produced; `pack` returns `None` instead |
//! | `7..=255` | exact distance `x ∈ [-124, 124]` as `x + 131` |
//!
//! Six direction values need only 3 bits, but an exact distance does
//! not fit 3 bits at all, and the mixed 8-bit lane keeps both in the
//! same word while still packing the common `depth ≤ 8` vector into a
//! single `u64`. Vectors that are too long (`> 16` entries) or carry a
//! distance outside `±124` simply don't pack ([`PackedDepVector::pack`]
//! returns `None`) and stay on the exact boxed path — packing is a
//! lossless accelerator, never an approximation.
//!
//! # O(1) lexicographic tests
//!
//! For each entry we precompute three bits — *can this entry be
//! negative / zero / positive?* — into `u16` masks. "Can the vector be
//! lexicographically negative" (the §3.2 illegality witness) is then:
//! find the first entry that **cannot** be zero (`trailing_zeros` of
//! `!zero`), and ask whether any entry at or before it can be negative
//! (one `AND` against a prefix mask). No loop, no branches per entry.

use crate::vector::{DepElem, DepVector, Dir};

/// Reserved lane code (never produced by [`PackedDepVector::pack`]).
pub const ESCAPE: u8 = 6;
/// Largest |distance| that packs into a lane.
pub const MAX_DIST: i64 = 124;
/// Bias added to an in-range distance to form its lane code.
const DIST_BIAS: i64 = 131;
/// Most entries a packed vector can hold (two words × 8 lanes).
pub const MAX_LEN: usize = 16;

/// Lane codes 0..=5 are `Dir::ALL` order.
const DIR_TABLE: [Dir; 6] = Dir::ALL;

#[inline]
fn encode(e: DepElem) -> Option<u8> {
    match e {
        DepElem::Dir(d) => Some(match d {
            Dir::Pos => 0,
            Dir::Neg => 1,
            Dir::NonNeg => 2,
            Dir::NonPos => 3,
            Dir::NonZero => 4,
            Dir::Any => 5,
        }),
        DepElem::Dist(x) if (-MAX_DIST..=MAX_DIST).contains(&x) => Some((x + DIST_BIAS) as u8),
        DepElem::Dist(_) => None,
    }
}

#[inline]
fn decode(code: u8) -> DepElem {
    if code < 6 {
        DepElem::Dir(DIR_TABLE[code as usize])
    } else {
        debug_assert!(code != ESCAPE, "escape lane in a packed vector");
        DepElem::Dist(code as i64 - DIST_BIAS)
    }
}

/// A [`DepVector`] of at most [`MAX_LEN`] entries packed into two `u64`
/// words, with per-entry sign-class masks for O(1) legality tests.
///
/// Equality and hashing are word-wise, and agree with [`DepVector`]
/// equality on packable vectors: the encoding is injective, so
/// `pack(a) == pack(b) ⟺ a == b`.
///
/// ```
/// use irlt_dependence::packed::PackedDepVector;
/// use irlt_dependence::{DepElem, DepVector, Dir};
///
/// let v = DepVector::new(vec![DepElem::ZERO, DepElem::Dir(Dir::NonZero)]);
/// let p = PackedDepVector::pack(&v).unwrap();
/// assert_eq!(p.unpack(), v);
/// assert_eq!(p.can_be_lex_negative(), v.can_be_lex_negative());
///
/// // Out-of-range distances refuse to pack rather than approximate.
/// assert!(PackedDepVector::pack(&DepVector::distances(&[1000])).is_none());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PackedDepVector {
    words: [u64; 2],
    len: u8,
    /// Bit `k` set ⟺ entry `k` can take a strictly negative value.
    neg: u16,
    /// Bit `k` set ⟺ entry `k` can take the value zero.
    zero: u16,
    /// Bit `k` set ⟺ entry `k` can take a strictly positive value.
    pos: u16,
}

impl PackedDepVector {
    /// Packs `v`, or `None` if it is too long or holds an out-of-range
    /// distance (the caller keeps the boxed representation then).
    pub fn pack(v: &DepVector) -> Option<PackedDepVector> {
        let elems = v.elems();
        if elems.len() > MAX_LEN {
            return None;
        }
        let mut words = [0u64; 2];
        let (mut neg, mut zero, mut pos) = (0u16, 0u16, 0u16);
        for (k, &e) in elems.iter().enumerate() {
            let code = encode(e)?;
            words[k / 8] |= (code as u64) << ((k % 8) * 8);
            let bit = 1u16 << k;
            if e.can_neg() {
                neg |= bit;
            }
            if e.can_zero() {
                zero |= bit;
            }
            if e.can_pos() {
                pos |= bit;
            }
        }
        Some(PackedDepVector {
            words,
            len: elems.len() as u8,
            neg,
            zero,
            pos,
        })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True for the empty vector.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The two packed words (low entries in `words()[0]`).
    pub fn words(&self) -> [u64; 2] {
        self.words
    }

    /// Decodes entry `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.len()`.
    pub fn entry(&self, k: usize) -> DepElem {
        assert!(k < self.len(), "entry {k} out of range (len {})", self.len);
        decode(((self.words[k / 8] >> ((k % 8) * 8)) & 0xff) as u8)
    }

    /// Expands back to the boxed representation (exact round-trip).
    pub fn unpack(&self) -> DepVector {
        DepVector::new((0..self.len()).map(|k| self.entry(k)).collect())
    }

    #[inline]
    fn len_mask(&self) -> u16 {
        if self.len >= 16 {
            u16::MAX
        } else {
            (1u16 << self.len) - 1
        }
    }

    /// Prefix of entries that can lead a first-nonzero decision: every
    /// entry up to and including the first one that cannot be zero.
    #[inline]
    fn lex_prefix(&self) -> u16 {
        let live = self.len_mask();
        let blockers = !self.zero & live;
        if blockers == 0 {
            live
        } else {
            let first = blockers.trailing_zeros(); // 0..=15
            if first >= 15 {
                live
            } else {
                ((1u16 << (first + 1)) - 1) & live
            }
        }
    }

    /// O(1) §3.2 illegality witness: can some tuple in `Tuples(d)` be
    /// lexicographically negative? Mirrors
    /// [`DepVector::can_be_lex_negative`] exactly.
    #[inline]
    pub fn can_be_lex_negative(&self) -> bool {
        self.neg & self.lex_prefix() != 0
    }

    /// O(1) mirror of [`DepVector::can_be_lex_positive`].
    #[inline]
    pub fn can_be_lex_positive(&self) -> bool {
        self.pos & self.lex_prefix() != 0
    }

    /// O(1) mirror of [`DepVector::can_be_zero`]: every entry can be zero.
    #[inline]
    pub fn can_be_zero(&self) -> bool {
        self.zero == self.len_mask()
    }

    /// O(1) mirror of [`DepVector::always_lex_positive`].
    #[inline]
    pub fn always_lex_positive(&self) -> bool {
        !self.can_be_lex_negative() && !self.can_be_zero()
    }

    /// Folds the packed words into a 64-bit hash without touching the
    /// heap (used by [`crate::DepSet`]'s dedup index).
    #[inline]
    pub fn word_hash(&self) -> u64 {
        // splitmix64-style: enough mixing for a bucket index, and
        // injective inputs (words + len determine the vector exactly).
        let mut x = self.words[0]
            ^ self.words[1].rotate_left(29)
            ^ ((self.len as u64) << 56)
            ^ 0x9e37_79b9_7f4a_7c15;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_elems() -> Vec<DepElem> {
        let mut es: Vec<DepElem> = Dir::ALL.iter().map(|&d| DepElem::Dir(d)).collect();
        for x in [-124, -3, -1, 0, 1, 2, 124] {
            es.push(DepElem::Dist(x));
        }
        es
    }

    #[test]
    fn roundtrip_every_elem_alone() {
        for e in all_elems() {
            let v = DepVector::new(vec![e]);
            let p = PackedDepVector::pack(&v).expect("in-range entry must pack");
            assert_eq!(p.unpack(), v);
            assert_eq!(p.entry(0), e);
        }
    }

    #[test]
    fn rejects_out_of_range_and_too_long() {
        assert!(PackedDepVector::pack(&DepVector::distances(&[125])).is_none());
        assert!(PackedDepVector::pack(&DepVector::distances(&[-125])).is_none());
        assert!(PackedDepVector::pack(&DepVector::distances(&[i64::MAX])).is_none());
        let long = DepVector::new(vec![DepElem::ZERO; MAX_LEN + 1]);
        assert!(PackedDepVector::pack(&long).is_none());
        let at_limit = DepVector::new(vec![DepElem::ZERO; MAX_LEN]);
        assert!(PackedDepVector::pack(&at_limit).is_some());
    }

    #[test]
    fn escape_code_is_never_produced() {
        // Codes 0..=5 are directions, 7..=255 are distances -124..=124;
        // nothing maps to 6.
        for e in all_elems() {
            assert_ne!(encode(e), Some(ESCAPE));
        }
        assert_eq!(encode(DepElem::Dist(-MAX_DIST)), Some(7));
        assert_eq!(encode(DepElem::Dist(MAX_DIST)), Some(255));
    }

    #[test]
    fn lex_tests_match_boxed_on_dense_small_vectors() {
        // Exhaustive over all 13-element palettes at lengths 1..=3:
        // 13 + 169 + 2197 vectors, every lex predicate compared.
        let palette = all_elems();
        let mut stack = vec![Vec::new()];
        while let Some(prefix) = stack.pop() {
            if !prefix.is_empty() {
                let v = DepVector::new(prefix.clone());
                let p = PackedDepVector::pack(&v).unwrap();
                assert_eq!(p.can_be_lex_negative(), v.can_be_lex_negative(), "{v}");
                assert_eq!(p.can_be_lex_positive(), v.can_be_lex_positive(), "{v}");
                assert_eq!(p.can_be_zero(), v.can_be_zero(), "{v}");
                assert_eq!(p.always_lex_positive(), v.always_lex_positive(), "{v}");
            }
            if prefix.len() < 3 {
                for &e in &palette {
                    let mut next = prefix.clone();
                    next.push(e);
                    stack.push(next);
                }
            }
        }
    }

    #[test]
    fn equality_is_injective() {
        let a = PackedDepVector::pack(&DepVector::distances(&[1, 0])).unwrap();
        let b = PackedDepVector::pack(&DepVector::distances(&[1, 0])).unwrap();
        let c = PackedDepVector::pack(&DepVector::distances(&[0, 1])).unwrap();
        let d = PackedDepVector::pack(&DepVector::distances(&[1])).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d); // same words, different length
        assert_ne!(a.word_hash(), d.word_hash());
    }

    #[test]
    fn sixteen_entry_vector_uses_both_words() {
        let elems: Vec<DepElem> = (0..16)
            .map(|k| {
                if k % 2 == 0 {
                    DepElem::POS
                } else {
                    DepElem::Dist(k as i64)
                }
            })
            .collect();
        let v = DepVector::new(elems);
        let p = PackedDepVector::pack(&v).unwrap();
        assert_ne!(p.words()[1], 0);
        assert_eq!(p.unpack(), v);
        assert_eq!(p.can_be_lex_negative(), v.can_be_lex_negative());
    }
}
