//! Sets of dependence vectors and the summary-expansion pass.
//!
//! `Tuples(D)` is the union of the tuple sets of the members, and the
//! framework's dependence legality test is: *the transformed `D` must admit
//! no lexicographically negative tuple* (§3.2).

use crate::fingerprint::{Fingerprint128, Fp128Hasher};
use crate::packed::PackedDepVector;
use crate::vector::{DepElem, DepVector, Dir};
use irlt_obs::Telemetry;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A set of dependence vectors for one loop nest, all of the same arity.
///
/// Membership is tracked by a hash index, so [`DepSet::insert`] dedups in
/// O(1) expected time even under the `2^(j−i+1)` image fan-out of `Block`
/// and `Interleave` mapping.
///
/// # Examples
///
/// ```
/// use irlt_dependence::{DepSet, DepVector};
///
/// let d = DepSet::from_vectors(vec![
///     DepVector::distances(&[1, -1]),
///     DepVector::distances(&[0, 1]),
/// ]).unwrap();
/// assert!(d.is_legal()); // no lexicographically negative tuple
/// ```
#[derive(Clone, Default)]
pub struct DepSet {
    vectors: Vec<DepVector>,
    /// Bit-packed mirror of `vectors` (`None` where a member doesn't
    /// pack — too long, or a distance outside ±124). The packed form is
    /// the hot representation: legality tests, dedup hashing, and the
    /// structural fingerprint all run on the words when available, and
    /// the boxed vector stays authoritative for everything else.
    packed: Vec<Option<PackedDepVector>>,
    /// Vector hash → indices into `vectors` (collision bucket). Exact
    /// equality is re-verified on lookup, so a 64-bit collision can never
    /// drop a genuinely distinct vector.
    index: HashMap<u64, Vec<u32>>,
}

/// Equality is over the member vectors (in insertion order); the hash
/// index is a derived acceleration structure and never observable.
impl PartialEq for DepSet {
    fn eq(&self, other: &Self) -> bool {
        self.vectors == other.vectors
    }
}

impl Eq for DepSet {}

impl fmt::Debug for DepSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DepSet")
            .field("vectors", &self.vectors)
            .finish()
    }
}

fn hash_vector(v: &DepVector) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

impl DepSet {
    /// The empty set (a nest with no cross-iteration dependences).
    pub fn new() -> DepSet {
        DepSet::default()
    }

    /// Builds a set, checking that all vectors have equal arity and
    /// dropping exact duplicates.
    ///
    /// # Errors
    ///
    /// Returns [`ArityMismatch`] if two vectors have different lengths.
    pub fn from_vectors(vectors: Vec<DepVector>) -> Result<DepSet, ArityMismatch> {
        let mut set = DepSet::new();
        for v in vectors {
            set.insert(v)?;
        }
        Ok(set)
    }

    /// Convenience constructor from distance tuples.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths.
    pub fn from_distances(rows: &[&[i64]]) -> DepSet {
        DepSet::from_vectors(rows.iter().map(|r| DepVector::distances(r)).collect())
            .expect("uniform arity")
    }

    /// Inserts a vector (ignored if an exact duplicate).
    ///
    /// # Errors
    ///
    /// Returns [`ArityMismatch`] if the arity differs from existing members.
    pub fn insert(&mut self, v: DepVector) -> Result<(), ArityMismatch> {
        let packed = PackedDepVector::pack(&v);
        self.insert_inner(v, packed)
    }

    /// Insert with the packed form already computed (so the mapping hot
    /// path packs each image exactly once, for both the legality check
    /// and the dedup hash).
    fn insert_inner(
        &mut self,
        v: DepVector,
        packed: Option<PackedDepVector>,
    ) -> Result<(), ArityMismatch> {
        if let Some(first) = self.vectors.first() {
            if first.len() != v.len() {
                return Err(ArityMismatch {
                    expected: first.len(),
                    found: v.len(),
                });
            }
        }
        let hash = match &packed {
            Some(p) => p.word_hash(),
            None => hash_vector(&v),
        };
        let bucket = self.index.entry(hash).or_default();
        // Packed equality is injective, so comparing words is exact when
        // both sides pack; otherwise fall back to boxed comparison.
        let duplicate = bucket
            .iter()
            .any(|&i| match (&packed, &self.packed[i as usize]) {
                (Some(p), Some(q)) => p == q,
                _ => self.vectors[i as usize] == v,
            });
        if !duplicate {
            bucket.push(u32::try_from(self.vectors.len()).expect("set size fits u32"));
            self.vectors.push(v);
            self.packed.push(packed);
        }
        Ok(())
    }

    /// The member vectors.
    pub fn vectors(&self) -> &[DepVector] {
        &self.vectors
    }

    /// Number of member vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True if there are no member vectors.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Arity of the member vectors (`None` when empty).
    pub fn arity(&self) -> Option<usize> {
        self.vectors.first().map(DepVector::len)
    }

    /// Iterates over the member vectors.
    pub fn iter(&self) -> std::slice::Iter<'_, DepVector> {
        self.vectors.iter()
    }

    /// Membership of a tuple in `Tuples(D)` (union over members).
    pub fn contains_tuple(&self, tuple: &[i64]) -> bool {
        self.vectors.iter().any(|v| v.contains_tuple(tuple))
    }

    /// Can member `i` be lexicographically negative? O(1) on the packed
    /// words when the member packs, boxed scan otherwise.
    #[inline]
    fn member_can_be_lex_negative(&self, i: usize) -> bool {
        match &self.packed[i] {
            Some(p) => p.can_be_lex_negative(),
            None => self.vectors[i].can_be_lex_negative(),
        }
    }

    /// The framework's dependence legality test: `Tuples(D)` contains no
    /// lexicographically negative tuple. Runs on the packed words (a few
    /// bit operations per member) wherever members pack.
    pub fn is_legal(&self) -> bool {
        !(0..self.vectors.len()).any(|i| self.member_can_be_lex_negative(i))
    }

    /// The members that admit a lexicographically negative tuple (the
    /// witnesses reported when a transformation is rejected).
    pub fn lex_negative_witnesses(&self) -> Vec<&DepVector> {
        (0..self.vectors.len())
            .filter(|&i| self.member_can_be_lex_negative(i))
            .map(|i| &self.vectors[i])
            .collect()
    }

    /// The packed form of member `k` (`None` if that member doesn't
    /// pack). Exposed for tests and diagnostics.
    pub fn packed_member(&self, k: usize) -> Option<PackedDepVector> {
        self.packed[k]
    }

    /// How many members are on the packed fast path.
    pub fn packed_members(&self) -> usize {
        self.packed.iter().filter(|p| p.is_some()).count()
    }

    /// Expands every summary direction (`≥ ≤ ≠ *`) into the equivalent set
    /// of vectors containing only distances `0` and directions `+`/`−`
    /// (recommended by §3.1 "to obtain the best precision possible").
    ///
    /// Each summary entry triples the worst case:
    /// `* ↦ {−, 0, +}`, `≥ ↦ {0, +}`, `≤ ↦ {−, 0}`, `≠ ↦ {−, +}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use irlt_dependence::{DepElem, DepSet, DepVector, Dir};
    ///
    /// let d = DepSet::from_vectors(vec![DepVector::new(vec![
    ///     DepElem::Dir(Dir::NonNeg),
    ///     DepElem::Dist(1),
    /// ])]).unwrap();
    /// let e = d.expand_summaries();
    /// assert_eq!(e.len(), 2); // (0,1) and (+,1)
    /// ```
    pub fn expand_summaries(&self) -> DepSet {
        let mut out = DepSet::new();
        for v in &self.vectors {
            let choices: Vec<Vec<DepElem>> = v
                .elems()
                .iter()
                .map(|e| match e {
                    DepElem::Dir(Dir::NonNeg) => vec![DepElem::ZERO, DepElem::POS],
                    DepElem::Dir(Dir::NonPos) => vec![DepElem::NEG, DepElem::ZERO],
                    DepElem::Dir(Dir::NonZero) => vec![DepElem::NEG, DepElem::POS],
                    DepElem::Dir(Dir::Any) => {
                        vec![DepElem::NEG, DepElem::ZERO, DepElem::POS]
                    }
                    other => vec![*other],
                })
                .collect();
            let mut acc: Vec<Vec<DepElem>> = vec![Vec::with_capacity(v.len())];
            for options in &choices {
                let mut next = Vec::with_capacity(acc.len() * options.len());
                for prefix in &acc {
                    for opt in options {
                        let mut row = prefix.clone();
                        row.push(*opt);
                        next.push(row);
                    }
                }
                acc = next;
            }
            for row in acc {
                self_insert_infallible(&mut out, DepVector::new(row));
            }
        }
        out
    }

    /// For each loop level, can that loop be made `pardo` *on its own*
    /// (leaving every other loop sequential)?
    ///
    /// Loop `k` is parallelizable iff making its entry sign-symmetric
    /// (iterations may execute in any relative order, so `S(d_k)` becomes
    /// `S(d_k) ∪ −S(d_k)`) leaves every vector lexicographically
    /// non-negative — the same rule the framework's `Parallelize` template
    /// applies (Table 2's `parmap`).
    ///
    /// # Examples
    ///
    /// ```
    /// use irlt_dependence::DepSet;
    ///
    /// // The k-carried matmul reduction: i and j parallelize, k does not.
    /// let d = DepSet::from_distances(&[&[0, 0, 1]]);
    /// assert_eq!(d.parallelizable_loops(), vec![true, true, false]);
    /// ```
    pub fn parallelizable_loops(&self) -> Vec<bool> {
        let Some(n) = self.arity() else {
            return Vec::new();
        };
        (0..n)
            .map(|k| {
                self.vectors.iter().all(|v| {
                    let mut elems = v.elems().to_vec();
                    elems[k] = elems[k].merge(elems[k].reverse());
                    !DepVector::new(elems).can_be_lex_negative()
                })
            })
            .collect()
    }

    /// The levels that carry at least one dependence (possibly — for
    /// imprecise vectors every possible carrier counts).
    pub fn carrying_levels(&self) -> Vec<usize> {
        let mut levels: Vec<usize> = Vec::new();
        for v in &self.vectors {
            for p in v.possible_carried_levels() {
                if !levels.contains(&p) {
                    levels.push(p);
                }
            }
        }
        levels.sort_unstable();
        levels
    }

    /// Removes members whose tuple set is covered by another member.
    pub fn normalize(&self) -> DepSet {
        self.prune_subsumed()
    }

    /// Subsumption pruning: drops every member `v` whose `Tuples(v)` is
    /// contained in another member's (e.g. `(1)` subsumed by `(+)`,
    /// anything by `(*)`).
    ///
    /// Because `Tuples(D)` is a union over members, the pruned set has
    /// exactly the same tuple set — and therefore exactly the same
    /// [`DepSet::is_legal`] verdict — as the original. Members are
    /// exact-duplicate-free by construction and no two distinct
    /// [`DepElem`] representations denote the same value set, so mutual
    /// subsumption between distinct members is impossible: dropping `v`
    /// always leaves a strictly larger `w` behind.
    ///
    /// # Examples
    ///
    /// ```
    /// use irlt_dependence::{DepElem, DepSet, DepVector};
    ///
    /// let d = DepSet::from_vectors(vec![
    ///     DepVector::new(vec![DepElem::Dist(1)]),
    ///     DepVector::new(vec![DepElem::POS]),
    /// ]).unwrap();
    /// assert_eq!(d.prune_subsumed().len(), 1); // (1) ⊆ (+)
    /// ```
    pub fn prune_subsumed(&self) -> DepSet {
        let mut out = DepSet::new();
        'outer: for (i, v) in self.vectors.iter().enumerate() {
            for (j, w) in self.vectors.iter().enumerate() {
                if i != j && v.subsumed_by(w) {
                    continue 'outer;
                }
            }
            self_insert_infallible(&mut out, v.clone());
        }
        out
    }

    /// Maps every member through a per-vector image rule, unioning the
    /// images with hashed dedup (the shape of every Table 2 rule).
    ///
    /// # Panics
    ///
    /// Panics if `f` produces images of differing arity.
    pub fn map_vectors<F>(&self, mut f: F) -> DepSet
    where
        F: FnMut(&DepVector) -> Vec<DepVector>,
    {
        let mut out = DepSet::new();
        for v in &self.vectors {
            for m in f(v) {
                out.insert(m).expect("uniform image arity");
            }
        }
        out
    }

    /// [`DepSet::map_vectors`] with telemetry: records, under
    /// `depmap/fanout/<label>`, the exact histogram of images produced
    /// per input vector — the `2^(j−i+1)` Block/Interleave expansion made
    /// visible — plus the `depmap/vectors_mapped`, `depmap/images`, and
    /// `depmap/images_deduped` counters. With a disabled handle this is
    /// exactly `map_vectors` (no formatting, no aggregation).
    ///
    /// # Panics
    ///
    /// Panics if `f` produces images of differing arity.
    pub fn map_vectors_observed<F>(&self, mut f: F, tel: &Telemetry, label: &str) -> DepSet
    where
        F: FnMut(&DepVector) -> Vec<DepVector>,
    {
        if !tel.is_enabled() {
            return self.map_vectors(f);
        }
        let fanout_key = format!("depmap/fanout/{label}");
        let mut out = DepSet::new();
        let mut images = 0u64;
        for v in &self.vectors {
            let mapped = f(v);
            tel.record(&fanout_key, mapped.len() as u64);
            images += mapped.len() as u64;
            for m in mapped {
                out.insert(m).expect("uniform image arity");
            }
        }
        tel.count("depmap/vectors_mapped", self.vectors.len() as u64);
        tel.count("depmap/images", images);
        tel.count("depmap/images_deduped", images - out.len() as u64);
        out
    }

    /// Fail-fast mapping mode: like [`DepSet::map_vectors`], but
    /// short-circuits the moment an image admits a lexicographically
    /// negative tuple, returning that image as the witness.
    ///
    /// On `Ok`, the result is exactly `map_vectors(f)` and is legal. Note
    /// the asymmetry with the framework's whole-sequence test (§3.2 allows
    /// illegal *intermediate* stages): fail-fast is only a sound legality
    /// test for the **final** mapping step of a sequence whose earlier
    /// image is already known legal — which is precisely the beam-search
    /// extension case.
    ///
    /// # Errors
    ///
    /// Returns the first lexicographically-negative-capable image.
    ///
    /// # Panics
    ///
    /// Panics if `f` produces images of differing arity.
    pub fn try_map_vectors<F>(&self, mut f: F) -> Result<DepSet, DepVector>
    where
        F: FnMut(&DepVector) -> Vec<DepVector>,
    {
        let mut out = DepSet::new();
        for v in &self.vectors {
            for m in f(v) {
                let packed = PackedDepVector::pack(&m);
                let lex_negative = match &packed {
                    Some(p) => p.can_be_lex_negative(),
                    None => m.can_be_lex_negative(),
                };
                if lex_negative {
                    return Err(m);
                }
                out.insert_inner(m, packed).expect("uniform image arity");
            }
        }
        Ok(out)
    }

    /// [`DepSet::try_map_vectors`] with telemetry: the same fail-fast
    /// semantics, recording the per-vector fan-out histogram under
    /// `depmap/fanout/<label>`, the mapping counters of
    /// [`DepSet::map_vectors_observed`], and — when the short-circuit
    /// fires — `depmap/failfast_short_circuits` together with
    /// `depmap/vectors_skipped` (members never mapped because an earlier
    /// image was already lexicographically negative).
    ///
    /// # Errors
    ///
    /// Returns the first lexicographically-negative-capable image.
    ///
    /// # Panics
    ///
    /// Panics if `f` produces images of differing arity.
    pub fn try_map_vectors_observed<F>(
        &self,
        mut f: F,
        tel: &Telemetry,
        label: &str,
    ) -> Result<DepSet, DepVector>
    where
        F: FnMut(&DepVector) -> Vec<DepVector>,
    {
        if !tel.is_enabled() {
            return self.try_map_vectors(f);
        }
        let fanout_key = format!("depmap/fanout/{label}");
        let mut out = DepSet::new();
        let mut images = 0u64;
        for (k, v) in self.vectors.iter().enumerate() {
            let mapped = f(v);
            tel.record(&fanout_key, mapped.len() as u64);
            images += mapped.len() as u64;
            for m in mapped {
                let packed = PackedDepVector::pack(&m);
                let lex_negative = match &packed {
                    Some(p) => p.can_be_lex_negative(),
                    None => m.can_be_lex_negative(),
                };
                if lex_negative {
                    tel.count("depmap/vectors_mapped", (k + 1) as u64);
                    tel.count(
                        "depmap/vectors_skipped",
                        (self.vectors.len() - k - 1) as u64,
                    );
                    tel.count("depmap/images", images);
                    tel.incr("depmap/failfast_short_circuits");
                    return Err(m);
                }
                out.insert_inner(m, packed).expect("uniform image arity");
            }
        }
        tel.count("depmap/vectors_mapped", self.vectors.len() as u64);
        tel.count("depmap/images", images);
        tel.count("depmap/images_deduped", images - out.len() as u64);
        Ok(out)
    }
}

fn self_insert_infallible(set: &mut DepSet, v: DepVector) {
    set.insert(v).expect("uniform arity by construction");
}

/// The structural fingerprint folds the packed words directly (one
/// tagged absorb per member) and falls back to hashing the boxed vector
/// for members that don't pack. Consistent with [`PartialEq`]: equal
/// sets have identical member sequences, hence identical packed mirrors,
/// hence equal fingerprints.
impl Fingerprint128 for DepSet {
    fn fingerprint128(&self) -> u128 {
        let mut h = Fp128Hasher::new();
        h.write_usize(self.vectors.len());
        for (k, v) in self.vectors.iter().enumerate() {
            match &self.packed[k] {
                Some(p) => {
                    let w = p.words();
                    h.write_u8(1);
                    h.write_u64(w[0]);
                    h.write_u64(w[1]);
                    h.write_u8(p.len() as u8);
                }
                None => {
                    h.write_u8(0);
                    v.hash(&mut h);
                }
            }
        }
        h.finish128()
    }
}

impl fmt::Display for DepSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, v) in self.vectors.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<DepVector> for DepSet {
    /// # Panics
    ///
    /// Panics on arity mismatch; use [`DepSet::from_vectors`] to handle the
    /// error.
    fn from_iter<T: IntoIterator<Item = DepVector>>(iter: T) -> Self {
        DepSet::from_vectors(iter.into_iter().collect()).expect("uniform arity")
    }
}

impl<'a> IntoIterator for &'a DepSet {
    type Item = &'a DepVector;
    type IntoIter = std::slice::Iter<'a, DepVector>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl std::str::FromStr for DepSet {
    type Err = crate::vector::DepParseError;

    /// Parses the [`fmt::Display`] form of a set: `{(1, +), (0, *)}`
    /// (braces optional). The parse∘print fixpoint
    /// `d.to_string().parse() == d` holds for every set, including the
    /// empty one (`{}`).
    fn from_str(s: &str) -> Result<DepSet, Self::Err> {
        use crate::vector::parse_err;
        let t = s.trim();
        let inner = match t.strip_prefix('{') {
            Some(rest) => rest
                .strip_suffix('}')
                .ok_or_else(|| parse_err(format!("unterminated `{{` in `{t}`")))?,
            None => t,
        }
        .trim();
        let mut vectors = Vec::new();
        let mut rest = inner;
        while !rest.is_empty() {
            let open = rest
                .find('(')
                .ok_or_else(|| parse_err(format!("expected `(` in `{rest}`")))?;
            if !rest[..open].trim().trim_matches(',').trim().is_empty() {
                return Err(parse_err(format!("stray text before `(` in `{rest}`")));
            }
            let close = rest[open..]
                .find(')')
                .map(|k| open + k)
                .ok_or_else(|| parse_err(format!("unterminated `(` in `{rest}`")))?;
            vectors.push(rest[open..=close].parse::<DepVector>()?);
            rest = rest[close + 1..].trim().trim_start_matches(',').trim();
        }
        DepSet::from_vectors(vectors).map_err(|e| parse_err(e.to_string()))
    }
}

/// Two dependence vectors of different arity were mixed in one set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArityMismatch {
    /// Arity of the existing members.
    pub expected: usize,
    /// Arity of the offending vector.
    pub found: usize,
}

impl fmt::Display for ArityMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dependence vector arity mismatch: expected {}, found {}",
            self.expected, self.found
        )
    }
}

impl std::error::Error for ArityMismatch {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_parse_is_the_inverse_of_display() {
        let d = DepSet::from_vectors(vec![
            "(1, 0, >=)".parse().unwrap(),
            "(0, +, *)".parse().unwrap(),
            "(-2, !=, <=)".parse().unwrap(),
        ])
        .unwrap();
        assert_eq!(d.to_string().parse::<DepSet>().unwrap(), d);
        // Empty set round-trips too.
        assert_eq!(DepSet::new().to_string(), "{}");
        assert_eq!("{}".parse::<DepSet>().unwrap(), DepSet::new());
        // Arity mixing and junk are rejected.
        assert!("{(1), (1, 2)}".parse::<DepSet>().is_err());
        assert!("{(1, 2) junk (3, 4)}".parse::<DepSet>().is_err());
        assert!("{(1, 2)".parse::<DepSet>().is_err());
    }

    #[test]
    fn duplicates_dropped() {
        let d = DepSet::from_distances(&[&[1, 0], &[1, 0], &[0, 1]]);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn arity_mismatch_detected() {
        let mut d = DepSet::new();
        d.insert(DepVector::distances(&[1, 0])).unwrap();
        let err = d.insert(DepVector::distances(&[1])).unwrap_err();
        assert_eq!(
            err,
            ArityMismatch {
                expected: 2,
                found: 1
            }
        );
        assert!(err.to_string().contains("expected 2"));
    }

    #[test]
    fn legality_over_members() {
        let legal = DepSet::from_distances(&[&[1, -5], &[0, 2]]);
        assert!(legal.is_legal());
        assert!(legal.lex_negative_witnesses().is_empty());
        let illegal = DepSet::from_distances(&[&[1, -5], &[0, -1]]);
        assert!(!illegal.is_legal());
        let w = illegal.lex_negative_witnesses();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0], &DepVector::distances(&[0, -1]));
    }

    #[test]
    fn empty_set_is_legal() {
        assert!(DepSet::new().is_legal());
        assert!(DepSet::new().is_empty());
        assert_eq!(DepSet::new().arity(), None);
    }

    #[test]
    fn expansion_eliminates_summaries() {
        let d = DepSet::from_vectors(vec![DepVector::new(vec![
            DepElem::ANY,
            DepElem::Dir(Dir::NonZero),
        ])])
        .unwrap();
        let e = d.expand_summaries();
        assert_eq!(e.len(), 6); // 3 × 2
        for v in e.iter() {
            assert!(v.elems().iter().all(|x| !x.is_summary()));
        }
        // The expansion covers exactly the same tuples.
        for x in -2..=2 {
            for y in -2..=2 {
                assert_eq!(
                    d.contains_tuple(&[x, y]),
                    e.contains_tuple(&[x, y]),
                    "({x},{y})"
                );
            }
        }
    }

    #[test]
    fn expansion_preserves_legality_verdict() {
        let d = DepSet::from_vectors(vec![DepVector::new(vec![
            DepElem::Dir(Dir::NonNeg),
            DepElem::NEG,
        ])])
        .unwrap();
        let e = d.expand_summaries();
        assert_eq!(d.is_legal(), e.is_legal());
        assert!(!d.is_legal());
    }

    #[test]
    fn normalize_removes_subsumed() {
        let d = DepSet::from_vectors(vec![
            DepVector::new(vec![DepElem::Dist(1)]),
            DepVector::new(vec![DepElem::POS]),
            DepVector::new(vec![DepElem::NEG]),
        ])
        .unwrap();
        let n = d.normalize();
        assert_eq!(n.len(), 2);
        assert!(n.vectors().contains(&DepVector::new(vec![DepElem::POS])));
        assert!(n.vectors().contains(&DepVector::new(vec![DepElem::NEG])));
    }

    #[test]
    fn normalize_keeps_one_of_equals() {
        let d = DepSet::from_vectors(vec![
            DepVector::new(vec![DepElem::POS]),
            DepVector::new(vec![DepElem::POS]),
        ])
        .unwrap();
        assert_eq!(d.len(), 1); // deduped at insert
        assert_eq!(d.normalize().len(), 1);
    }

    #[test]
    fn parallelizable_loops_matmul() {
        let d = DepSet::from_distances(&[&[0, 0, 1]]);
        assert_eq!(d.parallelizable_loops(), vec![true, true, false]);
        let d = DepSet::from_distances(&[&[1, 0], &[0, 1]]);
        assert_eq!(d.parallelizable_loops(), vec![false, false]);
        // Outer-carried dependence frees the inner loop.
        let d = DepSet::from_distances(&[&[1, -2]]);
        assert_eq!(d.parallelizable_loops(), vec![false, true]);
        assert!(DepSet::new().parallelizable_loops().is_empty());
    }

    #[test]
    fn carrying_levels_union() {
        let d = DepSet::from_vectors(vec![
            DepVector::distances(&[0, 1]),
            DepVector::new(vec![DepElem::Dir(Dir::NonNeg), DepElem::POS]),
        ])
        .unwrap();
        assert_eq!(d.carrying_levels(), vec![0, 1]);
    }

    #[test]
    fn display() {
        let d = DepSet::from_distances(&[&[1, -1], &[0, 1]]);
        assert_eq!(d.to_string(), "{(1, -1), (0, 1)}");
    }

    #[test]
    fn hashed_dedup_scales_and_preserves_order() {
        let mut d = DepSet::new();
        for round in 0..3 {
            for a in -8..8i64 {
                for b in -8..8i64 {
                    d.insert(DepVector::distances(&[a, b])).unwrap();
                }
            }
            assert_eq!(d.len(), 256, "round {round}");
        }
        // Insertion order is preserved (first occurrence wins).
        assert_eq!(d.vectors()[0], DepVector::distances(&[-8, -8]));
        // Equality ignores the index structure.
        let mut e = DepSet::new();
        for v in d.iter() {
            e.insert(v.clone()).unwrap();
        }
        assert_eq!(d, e);
    }

    #[test]
    fn prune_subsumed_keeps_maximal_members() {
        let d = DepSet::from_vectors(vec![
            DepVector::new(vec![DepElem::Dist(1), DepElem::Dist(2)]),
            DepVector::new(vec![DepElem::POS, DepElem::Dir(Dir::NonNeg)]),
            DepVector::new(vec![DepElem::NEG, DepElem::ANY]),
        ])
        .unwrap();
        let p = d.prune_subsumed();
        assert_eq!(p.len(), 2);
        // Tuple set unchanged over a sampled box.
        for x in -3..=3 {
            for y in -3..=3 {
                assert_eq!(
                    d.contains_tuple(&[x, y]),
                    p.contains_tuple(&[x, y]),
                    "({x},{y})"
                );
            }
        }
        assert_eq!(d.is_legal(), p.is_legal());
    }

    #[test]
    fn prune_subsumed_preserves_illegal_verdict() {
        let d = DepSet::from_vectors(vec![
            DepVector::new(vec![DepElem::Dist(-1)]),
            DepVector::new(vec![DepElem::NEG]),
        ])
        .unwrap();
        let p = d.prune_subsumed();
        assert_eq!(p.len(), 1);
        assert!(!p.is_legal());
    }

    #[test]
    fn map_vectors_unions_images() {
        let d = DepSet::from_distances(&[&[1], &[2]]);
        // Every member maps to its negation and a shared (+) summary.
        let out = d.map_vectors(|v| {
            let neg = match v.elems()[0] {
                DepElem::Dist(x) => DepElem::Dist(-x),
                e => e,
            };
            vec![
                DepVector::new(vec![neg]),
                DepVector::new(vec![DepElem::POS]),
            ]
        });
        assert_eq!(out.len(), 3); // (-1), (+), (-2) — (+) deduped
    }

    #[test]
    fn observed_mapping_matches_plain_and_records_fanout() {
        let d = DepSet::from_distances(&[&[1, 1], &[0, 2], &[0, 0]]);
        // A blockmap-like rule: nonzero entries produce two images.
        let rule = |v: &DepVector| {
            if v.elems().iter().all(|e| *e == DepElem::ZERO) {
                vec![v.clone()]
            } else {
                vec![v.clone(), DepVector::new(vec![DepElem::POS, DepElem::ANY])]
            }
        };
        let tel = Telemetry::enabled();
        let observed = d.map_vectors_observed(rule, &tel, "Block");
        assert_eq!(observed, d.map_vectors(rule));
        let r = tel.report();
        // Fan-out histogram: two vectors mapped to 2 images, one to 1.
        assert_eq!(r.histograms["depmap/fanout/Block"][&2], 2);
        assert_eq!(r.histograms["depmap/fanout/Block"][&1], 1);
        assert_eq!(r.counter("depmap/vectors_mapped"), 3);
        assert_eq!(r.counter("depmap/images"), 5);
        assert_eq!(r.counter("depmap/images_deduped"), 1); // shared (+,*) image
                                                           // Disabled handle: identical result, nothing recorded.
        let off = Telemetry::disabled();
        assert_eq!(d.map_vectors_observed(rule, &off, "Block"), observed);
        assert!(off.report().counters.is_empty());
    }

    #[test]
    fn observed_try_map_records_short_circuit() {
        let d = DepSet::from_distances(&[&[1], &[2], &[3]]);
        let rule = |v: &DepVector| match v.elems()[0] {
            DepElem::Dist(2) => vec![DepVector::distances(&[-7])],
            _ => vec![v.clone()],
        };
        let tel = Telemetry::enabled();
        let err = d
            .try_map_vectors_observed(rule, &tel, "ReversePermute")
            .unwrap_err();
        assert_eq!(err, DepVector::distances(&[-7]));
        let r = tel.report();
        assert_eq!(r.counter("depmap/failfast_short_circuits"), 1);
        assert_eq!(r.counter("depmap/vectors_mapped"), 2);
        assert_eq!(r.counter("depmap/vectors_skipped"), 1);
        // The all-legal path agrees with the unobserved variant.
        let tel2 = Telemetry::enabled();
        let ok = d
            .try_map_vectors_observed(|v| vec![v.clone()], &tel2, "Parallelize")
            .unwrap();
        assert_eq!(ok, d.try_map_vectors(|v| vec![v.clone()]).unwrap());
        assert_eq!(tel2.report().counter("depmap/failfast_short_circuits"), 0);
    }

    #[test]
    fn packed_mirror_tracks_members() {
        let mut d = DepSet::from_distances(&[&[1, 0], &[0, 1]]);
        assert_eq!(d.packed_members(), 2);
        assert_eq!(d.packed_member(0).unwrap().unpack(), d.vectors()[0]);
        // An out-of-range distance stays on the boxed path, and legality
        // still agrees with the boxed test.
        d.insert(DepVector::distances(&[100_000, -1])).unwrap();
        assert_eq!(d.packed_members(), 2);
        assert!(d.packed_member(2).is_none());
        assert!(d.is_legal());
        d.insert(DepVector::distances(&[-100_000, 0])).unwrap();
        assert!(!d.is_legal());
        assert_eq!(d.lex_negative_witnesses().len(), 1);
    }

    #[test]
    fn fingerprint_is_structural() {
        use crate::fingerprint::Fingerprint128;
        let a = DepSet::from_distances(&[&[1, 0], &[0, 1]]);
        let b = DepSet::from_distances(&[&[1, 0], &[0, 1]]);
        let c = DepSet::from_distances(&[&[0, 1], &[1, 0]]); // order matters
        let d = DepSet::from_distances(&[&[1, 0]]);
        assert_eq!(a.fingerprint128(), b.fingerprint128());
        assert_ne!(a.fingerprint128(), c.fingerprint128());
        assert_ne!(a.fingerprint128(), d.fingerprint128());
        // Unpackable members still fingerprint deterministically.
        let big1 = DepSet::from_distances(&[&[1_000_000]]);
        let big2 = DepSet::from_distances(&[&[1_000_000]]);
        let big3 = DepSet::from_distances(&[&[1_000_001]]);
        assert_eq!(big1.fingerprint128(), big2.fingerprint128());
        assert_ne!(big1.fingerprint128(), big3.fingerprint128());
    }

    #[test]
    fn try_map_vectors_short_circuits_on_negative_image() {
        let d = DepSet::from_distances(&[&[1], &[2], &[3]]);
        let mut calls = 0;
        let r = d.try_map_vectors(|v| {
            calls += 1;
            match v.elems()[0] {
                DepElem::Dist(2) => vec![DepVector::new(vec![DepElem::Dist(-7)])],
                _ => vec![v.clone()],
            }
        });
        assert_eq!(r, Err(DepVector::distances(&[-7])));
        assert_eq!(calls, 2); // (3) never mapped
                              // The all-legal path returns the full union.
        let ok = d.try_map_vectors(|v| vec![v.clone()]).unwrap();
        assert_eq!(ok, d);
    }
}
