//! 128-bit structural fingerprints for cache keys and interner buckets.
//!
//! The shared legality cache (irlt-core) keys its cross-nest memo on the
//! *structure* of a `(prune, shape, mapped)` state. PR 5 rendered that
//! structure through `Display` and keyed on strings; BENCH_5 showed the
//! rendering dominating replay cost. This module provides the replacement:
//! a deterministic, allocation-free 128-bit fingerprint computed by
//! streaming a value's [`Hash`] impl through two independently-mixed
//! 64-bit lanes.
//!
//! # Why 128 bits *and* exact verification
//!
//! A 64-bit fingerprint over the millions of states a long batched run
//! can visit leaves a birthday-bound collision probability that is small
//! but not negligible — and a silent collision in the legality cache
//! would replay the *wrong* transformed nest, violating the bit-identical
//! determinism contract. 128 bits pushes the collision probability below
//! any practical concern (~2⁻⁶⁴ even at billions of states), and the
//! interner ([`crate::intern`]) still verifies exact equality on every
//! bucket hit, so even an adversarial collision degrades to a wasted
//! comparison, never a wrong answer.
//!
//! The fingerprint is deterministic across runs, threads, and platforms
//! for a fixed code version (it has no random seed), which is what lets
//! fingerprint-keyed caches preserve the serial ≡ parallel replay
//! contract. It is **not** a stable serialization format: a compiler or
//! code change may change fingerprints, and nothing may persist them.

use std::hash::{Hash, Hasher};

/// Two independent 64-bit mixing lanes exposing a 128-bit digest.
///
/// Implements [`std::hash::Hasher`] so any `#[derive(Hash)]` type can be
/// fingerprinted without bespoke traversal code. Each absorbed word is
/// mixed into both lanes with different odd multipliers and rotations
/// (splitmix64-style finalization at the end), so the lanes do not
/// correlate in practice.
///
/// ```
/// use irlt_dependence::fingerprint::{fp128, Fp128Hasher};
/// use std::hash::{Hash, Hasher};
///
/// let a = fp128(&(1u32, "x"));
/// let b = fp128(&(1u32, "x"));
/// assert_eq!(a, b); // deterministic
/// assert_ne!(a, fp128(&(2u32, "x")));
///
/// let mut h = Fp128Hasher::new();
/// 7u64.hash(&mut h);
/// assert_eq!(h.finish(), (h.finish128() & u64::MAX as u128) as u64);
/// ```
#[derive(Clone, Debug)]
pub struct Fp128Hasher {
    lo: u64,
    hi: u64,
    len: u64,
}

/// Odd constants from splitmix64 / xxhash families; the exact values are
/// unimportant beyond being odd and avalanche-tested.
const M0: u64 = 0x9e37_79b9_7f4a_7c15;
const M1: u64 = 0xbf58_476d_1ce4_e5b9;
const M2: u64 = 0x94d0_49bb_1331_11eb;
const M3: u64 = 0x2545_f491_4f6c_dd1d;

#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(M1);
    x ^= x >> 27;
    x = x.wrapping_mul(M2);
    x ^ (x >> 31)
}

impl Fp128Hasher {
    /// A fresh hasher with the fixed (seedless) initial state.
    pub fn new() -> Fp128Hasher {
        Fp128Hasher {
            lo: 0x6a09_e667_f3bc_c908, // frac(sqrt(2)), SHA-512 IV word
            hi: 0xbb67_ae85_84ca_a73b, // frac(sqrt(3))
            len: 0,
        }
    }

    #[inline]
    fn absorb(&mut self, word: u64) {
        self.len = self.len.wrapping_add(1);
        self.lo = (self.lo ^ word).wrapping_mul(M0).rotate_left(23);
        self.hi = (self.hi ^ word.wrapping_mul(M3))
            .wrapping_mul(M1)
            .rotate_left(41);
    }

    /// The full 128-bit digest (low lane in the low 64 bits).
    pub fn finish128(&self) -> u128 {
        // Finalize copies so `finish128` stays idempotent and consistent
        // with `Hasher::finish`.
        let lo = mix64(self.lo ^ self.len);
        let hi = mix64(self.hi ^ self.len.wrapping_mul(M0) ^ lo);
        ((hi as u128) << 64) | lo as u128
    }
}

impl Default for Fp128Hasher {
    fn default() -> Fp128Hasher {
        Fp128Hasher::new()
    }
}

impl Hasher for Fp128Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        (self.finish128() & u64::MAX as u128) as u64
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Absorb 8 bytes at a time; the tail is length-tagged so "ab","c"
        // vs "a","bc" still differ through the per-call tail word.
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.absorb(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            tail[7] = rem.len() as u8 | 0x80;
            self.absorb(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.absorb(i as u64 ^ (1 << 8));
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.absorb(i as u64 ^ (1 << 17));
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.absorb(i as u64 ^ (1 << 33));
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.absorb(i);
    }
    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.absorb(i as u64);
        self.absorb((i >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.absorb(i as u64);
    }
    #[inline]
    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }
    #[inline]
    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }
    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }
    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }
    #[inline]
    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }
    #[inline]
    fn write_isize(&mut self, i: isize) {
        self.write_usize(i as usize);
    }
}

/// Fingerprints any [`Hash`] value through [`Fp128Hasher`].
pub fn fp128<T: Hash + ?Sized>(value: &T) -> u128 {
    let mut h = Fp128Hasher::new();
    value.hash(&mut h);
    h.finish128()
}

/// Types with a canonical 128-bit structural fingerprint.
///
/// The blanket rule is `fp128(self)` over `#[derive(Hash)]`; types with a
/// faster structural digest (e.g. [`crate::DepSet`], which folds its
/// packed member words directly) override it, **but must stay consistent
/// with equality**: `a == b` ⟹ `a.fingerprint128() == b.fingerprint128()`.
pub trait Fingerprint128 {
    /// The structural fingerprint.
    fn fingerprint128(&self) -> u128;
}

impl Fingerprint128 for irlt_ir::LoopNest {
    fn fingerprint128(&self) -> u128 {
        fp128(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct() {
        assert_eq!(fp128(&[1u8, 2, 3]), fp128(&[1u8, 2, 3]));
        assert_ne!(fp128(&[1u8, 2, 3]), fp128(&[1u8, 2, 4]));
        assert_ne!(fp128(&0u64), fp128(&1u64));
    }

    #[test]
    fn boundary_sensitive_byte_stream() {
        // Different split of the same bytes through separate write calls
        // is allowed to collide per the Hasher contract, but a length
        // change must not.
        assert_ne!(fp128(&b"abc"[..]), fp128(&b"abcd"[..]));
        assert_ne!(fp128(&b""[..]), fp128(&b"\0"[..]));
    }

    #[test]
    fn lanes_do_not_mirror() {
        for i in 0..64u64 {
            let d = fp128(&i);
            assert_ne!((d >> 64) as u64, d as u64, "lanes equal for {i}");
        }
    }

    #[test]
    fn finish_matches_low_lane() {
        let mut h = Fp128Hasher::new();
        "hello".hash(&mut h);
        assert_eq!(h.finish() as u128, h.finish128() & u64::MAX as u128);
    }

    #[test]
    fn no_trivial_64bit_lane_collisions_on_small_ints() {
        use std::collections::HashSet;
        let mut lows = HashSet::new();
        let mut highs = HashSet::new();
        for i in 0..10_000u64 {
            let d = fp128(&i);
            assert!(lows.insert(d as u64));
            assert!(highs.insert((d >> 64) as u64));
        }
    }

    #[test]
    fn nest_fingerprint_tracks_structure() {
        use irlt_ir::parse_nest;
        let a = parse_nest("do i = 1, 10\n  a(i) = a(i - 1)\nenddo").unwrap();
        let b = parse_nest("do i = 1, 10\n  a(i) = a(i - 1)\nenddo").unwrap();
        let c = parse_nest("do i = 1, 11\n  a(i) = a(i - 1)\nenddo").unwrap();
        assert_eq!(a.fingerprint128(), b.fingerprint128());
        assert_ne!(a.fingerprint128(), c.fingerprint128());
    }
}
