//! A minimal JSON value, parser, and writer.
//!
//! The workspace is hermetic (no `serde`), so the telemetry artifact
//! format is hand-rolled: this module round-trips exactly the JSON this
//! crate emits, plus ordinary interchange JSON such as the recorded
//! bench baselines (`BENCH_3.json`). Object key order is preserved
//! (insertion order), integers and floats are kept distinct, and string
//! escapes — including `\uXXXX` surrogate pairs — are handled.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part or exponent that fits `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; key order is preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Nested lookup: `get("a").get("b")…` over a key path.
    pub fn get_path(&self, path: &[&str]) -> Option<&Json> {
        path.iter().try_fold(self, |v, k| v.get(k))
    }

    /// The value as `i64` (exact integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `f64` (both numeric variants).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object members.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Parses a JSON document (one value, surrounded by whitespace only).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Pretty rendering with two-space indentation and a trailing newline
    /// — the telemetry artifact format.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, 0, true);
        out.push('\n');
        out
    }
}

/// Compact (single-line) rendering.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, 0, false);
        f.write_str(&out)
    }
}

fn write_value(out: &mut String, v: &Json, depth: usize, pretty: bool) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(n) => out.push_str(&n.to_string()),
        Json::Float(x) => write_float(out, *x),
        Json::Str(s) => write_string(out, s),
        Json::Array(items) => write_seq(out, items.len(), depth, pretty, '[', ']', |out, k| {
            write_value(out, &items[k], depth + 1, pretty);
        }),
        Json::Object(members) => {
            write_seq(out, members.len(), depth, pretty, '{', '}', |out, k| {
                let (key, val) = &members[k];
                write_string(out, key);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, depth + 1, pretty);
            })
        }
    }
}

fn write_seq(
    out: &mut String,
    len: usize,
    depth: usize,
    pretty: bool,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for k in 0..len {
        if k > 0 {
            out.push(',');
        }
        if pretty {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str("  ");
            }
        }
        item(out, k);
    }
    if pretty {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
    out.push(close);
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = format!("{x}");
        // `Display` omits the decimal point for integral floats; keep one
        // so the value parses back as Float, not Int.
        if s.contains(['.', 'e', 'E']) {
            out.push_str(&s);
        } else {
            out.push_str(&s);
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Inf; emit null (counters and durations are
        // always finite, so this is a defensive corner).
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with its byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the `XXXX` of a `\uXXXX` escape (the backslash and `u` are
    /// consumed), combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected hex digit")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number characters");
        if !float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
    }

    #[test]
    fn int_float_distinction() {
        assert_eq!(Json::parse("7").unwrap(), Json::Int(7));
        assert_eq!(Json::parse("7.0").unwrap(), Json::Float(7.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        // Integral floats keep a decimal point when written.
        assert_eq!(Json::Float(7.0).to_string(), "7.0");
        // Beyond i64: falls back to float rather than failing.
        assert!(matches!(
            Json::parse("99999999999999999999").unwrap(),
            Json::Float(_)
        ));
    }

    #[test]
    fn nested_structure_and_lookup() {
        let v = Json::parse(r#"{"a": {"b": [1, 2, {"c": true}]}, "d": null}"#).unwrap();
        assert_eq!(
            v.get_path(&["a", "b"]).unwrap().as_array().unwrap().len(),
            3
        );
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get_path(&["a", "b", "c"]), None, "arrays are not objects");
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::Str("line\nquote\"back\\slash\ttab\u{1}".to_string());
        let text = original.to_string();
        assert_eq!(Json::parse(&text).unwrap(), original);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            Json::parse(r#""\u00b5s""#).unwrap(),
            Json::Str("µs".to_string())
        );
        // Surrogate pair: U+1D11E musical G clef.
        assert_eq!(
            Json::parse(r#""\ud834\udd1e""#).unwrap(),
            Json::Str("\u{1D11E}".to_string())
        );
        assert!(
            Json::parse(r#""\ud834""#).is_err(),
            "unpaired surrogate rejected"
        );
        // Raw (unescaped) UTF-8 flows through.
        assert_eq!(Json::parse("\"µs\"").unwrap(), Json::Str("µs".to_string()));
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Json::Object(vec![
            (
                "counters".to_string(),
                Json::Object(vec![("a/b".to_string(), Json::Int(3))]),
            ),
            ("empty".to_string(), Json::Array(Vec::new())),
            (
                "list".to_string(),
                Json::Array(vec![Json::Int(1), Json::Float(2.5)]),
            ),
        ]);
        let text = v.to_string_pretty();
        assert!(text.ends_with('\n'));
        assert!(text.contains("  \"counters\""), "{text}");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_report_offset() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"\\q\"",
            "[1] x",
        ] {
            let err = Json::parse(text).unwrap_err();
            assert!(err.to_string().contains("byte"), "{text}: {err}");
        }
    }

    #[test]
    fn key_order_preserved() {
        let v = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }
}
