//! # irlt-obs — search & legality observability for the irlt framework
//!
//! A zero-dependency, hand-rolled structured-telemetry layer (the
//! workspace is hermetic — no `tracing`): monotone counters, exact
//! histograms, `f64` stream summaries, RAII timing spans, and a JSON
//! emitter, behind a [`Telemetry`] handle that is a **no-op by default**.
//! The instrumented layers — the `irlt-opt` beam search, the `irlt-core`
//! incremental legality engine, `irlt-dependence` vector mapping, and
//! the `irlt-cachesim` counters — all thread the same handle, so one
//! [`Report`] shows why a search returned what it did: per-depth
//! candidate accounting, legality-cache hits, fail-fast short-circuits,
//! the `2^(j−i+1)` Block/Interleave image fan-out histogram, and thread
//! fan-out / merge timings.
//!
//! Guarantee: a disabled handle records nothing and never influences
//! control flow, so results are bit-identical with telemetry on or off
//! (asserted in the workspace test suite). Binaries enable it with
//! `IRLT_TELEMETRY=path.json` ([`Telemetry::from_env`]) and persist the
//! machine-readable artifact with [`Telemetry::write_env_report`] — the
//! file CI archives and diffs across PRs.
//!
//! # Examples
//!
//! ```
//! use irlt_obs::{Json, Report, Telemetry};
//!
//! let tel = Telemetry::enabled();
//! tel.incr("search/rounds");
//! tel.record("depmap/fanout/Block", 2);
//! {
//!     let _span = tel.span("search/depth.1/expand");
//!     // … work …
//! }
//! let report = tel.report();
//! assert_eq!(report.counter("search/rounds"), 1);
//!
//! // The artifact round-trips through the hand-rolled JSON layer.
//! let text = report.to_json().to_string_pretty();
//! let back = Report::from_json(&Json::parse(&text).unwrap()).unwrap();
//! assert_eq!(back, report);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
mod report;
mod sink;

pub use json::{Json, JsonError};
pub use report::{Report, SpanStat, StatSummary};
pub use sink::{Span, Telemetry, ENV_VAR};
