//! The telemetry handle and its aggregation sink.
//!
//! [`Telemetry`] is a cheap clone-and-share handle: **disabled** (the
//! default) it holds no sink and every operation is a branch on `None` —
//! no allocation, no locking, no formatting — so instrumented hot paths
//! cost nothing in production. **Enabled**, it shares one mutex-guarded
//! registry across clones and threads; the beam search hands the same
//! handle to every worker, and counters aggregate monotonically in
//! whatever order threads land, which is safe precisely because recording
//! never influences control flow (bit-identity of results with telemetry
//! on vs off is asserted in the workspace test suite).

use crate::report::Report;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Environment variable that enables telemetry in binaries and names the
/// JSON artifact path: `IRLT_TELEMETRY=telemetry.json`.
pub const ENV_VAR: &str = "IRLT_TELEMETRY";

/// A shareable telemetry handle. See the module docs.
///
/// # Examples
///
/// ```
/// use irlt_obs::Telemetry;
///
/// let tel = Telemetry::enabled();
/// tel.incr("search/rounds");
/// tel.count("depmap/images", 4);
/// tel.record("depmap/fanout/Block", 4);
/// tel.observe("search/depth.1/score", 997.5);
/// let report = tel.report();
/// assert_eq!(report.counter("depmap/images"), 4);
///
/// // The default handle is a no-op: nothing is ever aggregated.
/// let off = Telemetry::disabled();
/// off.incr("search/rounds");
/// assert!(off.report().counters.is_empty());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    sink: Option<Arc<Mutex<Report>>>,
}

impl Telemetry {
    /// The no-op handle (also [`Default`]): records nothing, costs one
    /// `Option` branch per call.
    pub fn disabled() -> Telemetry {
        Telemetry { sink: None }
    }

    /// A handle with a fresh, empty sink.
    pub fn enabled() -> Telemetry {
        Telemetry {
            sink: Some(Arc::new(Mutex::new(Report::default()))),
        }
    }

    /// Enabled iff the `IRLT_TELEMETRY` environment variable is set and
    /// non-empty (its value is the artifact path for
    /// [`Telemetry::write_env_report`]); disabled otherwise.
    pub fn from_env() -> Telemetry {
        match std::env::var(ENV_VAR) {
            Ok(path) if !path.is_empty() => Telemetry::enabled(),
            _ => Telemetry::disabled(),
        }
    }

    /// Whether this handle aggregates anything. Instrumentation sites use
    /// this to skip name formatting entirely on the no-op path.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Adds `delta` to the named monotone counter.
    pub fn count(&self, name: &str, delta: u64) {
        if let Some(sink) = &self.sink {
            let mut r = sink.lock().expect("telemetry sink poisoned");
            *r.counters.entry(name.to_string()).or_insert(0) += delta;
        }
    }

    /// Increments the named counter by one.
    pub fn incr(&self, name: &str) {
        self.count(name, 1);
    }

    /// Adds one occurrence of `value` to the named exact histogram.
    pub fn record(&self, name: &str, value: u64) {
        if let Some(sink) = &self.sink {
            let mut r = sink.lock().expect("telemetry sink poisoned");
            *r.histograms
                .entry(name.to_string())
                .or_default()
                .entry(value)
                .or_insert(0) += 1;
        }
    }

    /// Folds `value` into the named stream summary (count/min/max/sum).
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(sink) = &self.sink {
            let mut r = sink.lock().expect("telemetry sink poisoned");
            r.stats.entry(name.to_string()).or_default().observe(value);
        }
    }

    /// Adds one completed span of length `elapsed` under `name`.
    pub fn record_span(&self, name: &str, elapsed: Duration) {
        if let Some(sink) = &self.sink {
            let mut r = sink.lock().expect("telemetry sink poisoned");
            r.spans.entry(name.to_string()).or_default().record(elapsed);
        }
    }

    /// Starts an RAII span; its wall time is recorded when the guard
    /// drops. On a disabled handle the guard does nothing (and never
    /// reads the clock).
    pub fn span(&self, name: &str) -> Span {
        Span {
            state: self
                .sink
                .as_ref()
                .map(|_| (self.clone(), name.to_string(), Instant::now())),
        }
    }

    /// Snapshots the sink (an empty report when disabled).
    pub fn report(&self) -> Report {
        match &self.sink {
            Some(sink) => sink.lock().expect("telemetry sink poisoned").clone(),
            None => Report::default(),
        }
    }

    /// Writes the JSON artifact to the path named by `IRLT_TELEMETRY`,
    /// if the variable is set and this handle is enabled. Returns the
    /// path written to, if any.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from writing the artifact.
    pub fn write_env_report(&self) -> std::io::Result<Option<std::path::PathBuf>> {
        if !self.is_enabled() {
            return Ok(None);
        }
        let Ok(path) = std::env::var(ENV_VAR) else {
            return Ok(None);
        };
        if path.is_empty() {
            return Ok(None);
        }
        let path = std::path::PathBuf::from(path);
        std::fs::write(&path, self.report().to_json().to_string_pretty())?;
        Ok(Some(path))
    }
}

/// RAII timing guard returned by [`Telemetry::span`].
#[must_use = "a span records its time when dropped"]
#[derive(Debug)]
pub struct Span {
    state: Option<(Telemetry, String, Instant)>,
}

impl Span {
    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((tel, name, start)) = self.state.take() {
            tel.record_span(&name, start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_aggregate_monotonically() {
        let tel = Telemetry::enabled();
        tel.incr("a");
        tel.count("a", 9);
        tel.incr("b/c");
        let r = tel.report();
        assert_eq!(r.counter("a"), 10);
        assert_eq!(r.counter("b/c"), 1);
        assert_eq!(r.counter_sum(""), 11);
    }

    #[test]
    fn clones_share_one_sink() {
        let tel = Telemetry::enabled();
        let clone = tel.clone();
        clone.incr("shared");
        tel.incr("shared");
        assert_eq!(tel.report().counter("shared"), 2);
    }

    #[test]
    fn threads_aggregate_into_one_sink() {
        let tel = Telemetry::enabled();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = tel.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        t.incr("parallel/hits");
                    }
                });
            }
        });
        assert_eq!(tel.report().counter("parallel/hits"), 4000);
    }

    #[test]
    fn disabled_handle_is_a_no_op() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.incr("x");
        tel.record("h", 3);
        tel.observe("s", 1.0);
        tel.record_span("sp", Duration::from_millis(1));
        tel.span("sp2").finish();
        assert_eq!(tel.report(), Report::default());
        assert_eq!(Telemetry::default().report(), Report::default());
    }

    #[test]
    fn histograms_and_stats_accumulate() {
        let tel = Telemetry::enabled();
        for v in [1, 2, 2, 4] {
            tel.record("fanout", v);
        }
        tel.observe("score", 3.0);
        tel.observe("score", -1.0);
        let r = tel.report();
        assert_eq!(r.histograms["fanout"][&2], 2);
        assert_eq!(r.stats["score"].count, 2);
        assert_eq!(r.stats["score"].min, -1.0);
    }

    #[test]
    fn span_guard_records_on_drop() {
        let tel = Telemetry::enabled();
        {
            let _span = tel.span("work");
            std::hint::black_box(());
        }
        tel.span("work").finish();
        let r = tel.report();
        assert_eq!(r.spans["work"].count, 2);
    }

    #[test]
    fn report_snapshot_is_independent() {
        let tel = Telemetry::enabled();
        tel.incr("k");
        let snap = tel.report();
        tel.incr("k");
        assert_eq!(snap.counter("k"), 1);
        assert_eq!(tel.report().counter("k"), 2);
    }
}
