//! The immutable snapshot of a telemetry sink: counters, histograms,
//! value summaries, and span timings, with JSON (de)serialization and a
//! human-readable renderer.

use crate::json::Json;
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// Summary of an observed `f64` stream (e.g. the goal-score
/// distribution at one search depth).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StatSummary {
    /// Observations.
    pub count: u64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Sum of observations.
    pub sum: f64,
}

impl StatSummary {
    pub(crate) fn observe(&mut self, value: f64) {
        if self.count == 0 {
            (self.min, self.max) = (value, value);
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl Default for StatSummary {
    fn default() -> StatSummary {
        StatSummary {
            count: 0,
            min: 0.0,
            max: 0.0,
            sum: 0.0,
        }
    }
}

/// Aggregated wall-clock time under one span name.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed spans.
    pub count: u64,
    /// Total nanoseconds across all spans.
    pub total_ns: u64,
    /// Longest single span in nanoseconds.
    pub max_ns: u64,
}

impl SpanStat {
    pub(crate) fn record(&mut self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }
}

/// A point-in-time snapshot of everything a sink aggregated.
///
/// All four sections key hierarchical slash-separated names; the JSON
/// artifact mirrors the struct exactly, so reports round-trip through
/// [`Report::to_json`] / [`Report::from_json`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    /// Monotone event counters.
    pub counters: BTreeMap<String, u64>,
    /// Exact value histograms (`observed value → occurrences`), e.g. the
    /// per-vector image fan-out of `Block`/`Interleave` mapping.
    pub histograms: BTreeMap<String, BTreeMap<u64, u64>>,
    /// `f64` stream summaries (count/min/max/sum).
    pub stats: BTreeMap<String, StatSummary>,
    /// Aggregated span timings.
    pub spans: BTreeMap<String, SpanStat>,
}

impl Report {
    /// Counter value by name (0 when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sum of all counters whose name starts with `prefix` — the
    /// aggregate over per-depth families like `search/depth.*/legal`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Enumerates the report as stable *coverage bucket ids*: one id per
    /// counter name, plus one per `(histogram, observed value)` pair in
    /// the `name[value]` form — e.g. `depmap/fanout/Block[4]` for "a
    /// Block mapping produced a 4-image fan-out at least once".
    ///
    /// This is the enumeration the coverage-guided fuzzer (`irlt-fuzz`)
    /// snapshots into its coverage map: counters and exact histogram
    /// buckets are deterministic functions of the work performed, while
    /// `stats` and `spans` aggregate wall-clock and score values and are
    /// deliberately **excluded** (they would make coverage
    /// timing-dependent and non-replayable).
    ///
    /// Ids are returned in `BTreeMap` order, so the same report always
    /// enumerates identically.
    pub fn coverage_keys(&self) -> Vec<String> {
        let mut out: Vec<String> = self.counters.keys().cloned().collect();
        for (name, hist) in &self.histograms {
            for value in hist.keys() {
                out.push(format!("{name}[{value}]"));
            }
        }
        out
    }

    /// Serializes to the JSON artifact layout.
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), int(*v)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    Json::Object(h.iter().map(|(v, n)| (v.to_string(), int(*n))).collect()),
                )
            })
            .collect();
        let stats = self
            .stats
            .iter()
            .map(|(k, s)| {
                (
                    k.clone(),
                    Json::Object(vec![
                        ("count".to_string(), int(s.count)),
                        ("min".to_string(), Json::Float(s.min)),
                        ("max".to_string(), Json::Float(s.max)),
                        ("sum".to_string(), Json::Float(s.sum)),
                    ]),
                )
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .map(|(k, s)| {
                (
                    k.clone(),
                    Json::Object(vec![
                        ("count".to_string(), int(s.count)),
                        ("total_ns".to_string(), int(s.total_ns)),
                        ("max_ns".to_string(), int(s.max_ns)),
                    ]),
                )
            })
            .collect();
        Json::Object(vec![
            ("counters".to_string(), Json::Object(counters)),
            ("histograms".to_string(), Json::Object(histograms)),
            ("stats".to_string(), Json::Object(stats)),
            ("spans".to_string(), Json::Object(spans)),
        ])
    }

    /// Deserializes a report from the [`Report::to_json`] layout.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed section.
    pub fn from_json(v: &Json) -> Result<Report, String> {
        let mut report = Report::default();
        for (name, value) in section(v, "counters")? {
            report.counters.insert(name.clone(), as_u64(value, name)?);
        }
        for (name, value) in section(v, "histograms")? {
            let members = value
                .as_object()
                .ok_or_else(|| format!("histogram {name} is not an object"))?;
            let mut hist = BTreeMap::new();
            for (bucket, count) in members {
                let key: u64 = bucket
                    .parse()
                    .map_err(|_| format!("bad bucket {bucket} in {name}"))?;
                hist.insert(key, as_u64(count, name)?);
            }
            report.histograms.insert(name.clone(), hist);
        }
        for (name, value) in section(v, "stats")? {
            report.stats.insert(
                name.clone(),
                StatSummary {
                    count: field_u64(value, name, "count")?,
                    min: field_f64(value, name, "min")?,
                    max: field_f64(value, name, "max")?,
                    sum: field_f64(value, name, "sum")?,
                },
            );
        }
        for (name, value) in section(v, "spans")? {
            report.spans.insert(
                name.clone(),
                SpanStat {
                    count: field_u64(value, name, "count")?,
                    total_ns: field_u64(value, name, "total_ns")?,
                    max_ns: field_u64(value, name, "max_ns")?,
                },
            );
        }
        Ok(report)
    }

    /// Human-readable rendering, grouped by section, aligned, with
    /// durations scaled — the text that `explain`-style output appends.
    pub fn render(&self) -> String {
        let mut out = String::new();
        use fmt::Write as _;
        if self.counters.is_empty()
            && self.histograms.is_empty()
            && self.stats.is_empty()
            && self.spans.is_empty()
        {
            return "telemetry: (empty)\n".to_string();
        }
        let width = self
            .counters
            .keys()
            .chain(self.histograms.keys())
            .chain(self.stats.keys())
            .chain(self.spans.keys())
            .map(String::len)
            .max()
            .unwrap_or(4);
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:width$}  {v}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "histograms:");
            for (k, h) in &self.histograms {
                let buckets: Vec<String> =
                    h.iter().map(|(value, n)| format!("{value}→{n}")).collect();
                let _ = writeln!(out, "  {k:width$}  {{{}}}", buckets.join(", "));
            }
        }
        if !self.stats.is_empty() {
            let _ = writeln!(out, "stats:");
            for (k, s) in &self.stats {
                let _ = writeln!(
                    out,
                    "  {k:width$}  n={} min={:.3} mean={:.3} max={:.3}",
                    s.count,
                    s.min,
                    s.mean(),
                    s.max
                );
            }
        }
        if !self.spans.is_empty() {
            let _ = writeln!(out, "spans:");
            for (k, s) in &self.spans {
                let _ = writeln!(
                    out,
                    "  {k:width$}  n={} total={} max={}",
                    s.count,
                    fmt_ns(s.total_ns),
                    fmt_ns(s.max_ns)
                );
            }
        }
        out
    }
}

fn int(v: u64) -> Json {
    i64::try_from(v).map_or(Json::Float(v as f64), Json::Int)
}

fn section<'a>(v: &'a Json, name: &str) -> Result<&'a [(String, Json)], String> {
    v.get(name)
        .and_then(Json::as_object)
        .ok_or_else(|| format!("missing section {name}"))
}

fn as_u64(v: &Json, name: &str) -> Result<u64, String> {
    v.as_i64()
        .and_then(|n| u64::try_from(n).ok())
        .ok_or_else(|| format!("{name}: expected a non-negative integer"))
}

fn field_u64(v: &Json, name: &str, field: &str) -> Result<u64, String> {
    as_u64(
        v.get(field)
            .ok_or_else(|| format!("{name}: missing {field}"))?,
        name,
    )
}

fn field_f64(v: &Json, name: &str, field: &str) -> Result<f64, String> {
    v.get(field)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{name}: missing number {field}"))
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::default();
        r.counters.insert("search/depth.1/legal".to_string(), 12);
        r.counters.insert("search/depth.2/legal".to_string(), 30);
        r.counters.insert("legality/cache/hits".to_string(), 41);
        r.histograms.insert(
            "depmap/fanout/Block".to_string(),
            BTreeMap::from([(1, 9), (2, 4), (4, 1)]),
        );
        let mut s = StatSummary::default();
        s.observe(1.5);
        s.observe(-2.0);
        s.observe(7.25);
        r.stats.insert("search/depth.1/score".to_string(), s);
        let mut sp = SpanStat::default();
        sp.record(Duration::from_micros(150));
        sp.record(Duration::from_micros(50));
        r.spans.insert("search/depth.1/expand".to_string(), sp);
        r
    }

    #[test]
    fn json_round_trip_is_exact() {
        let report = sample();
        let text = report.to_json().to_string_pretty();
        let back = Report::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report);
        // And a second trip is bit-stable.
        assert_eq!(back.to_json().to_string_pretty(), text);
    }

    #[test]
    fn empty_report_round_trips() {
        let empty = Report::default();
        let back =
            Report::from_json(&Json::parse(&empty.to_json().to_string_pretty()).unwrap()).unwrap();
        assert_eq!(back, empty);
        assert!(empty.render().contains("(empty)"));
    }

    #[test]
    fn counter_accessors() {
        let r = sample();
        assert_eq!(r.counter("legality/cache/hits"), 41);
        assert_eq!(r.counter("nope"), 0);
        assert_eq!(r.counter_sum("search/depth."), 42);
    }

    #[test]
    fn stat_summary_tracks_extremes() {
        let s = sample().stats["search/depth.1/score"];
        assert_eq!(s.count, 3);
        assert_eq!(s.min, -2.0);
        assert_eq!(s.max, 7.25);
        assert!((s.mean() - 2.25).abs() < 1e-12);
        assert_eq!(StatSummary::default().mean(), 0.0);
    }

    #[test]
    fn span_stat_aggregates() {
        let sp = sample().spans["search/depth.1/expand"];
        assert_eq!(sp.count, 2);
        assert_eq!(sp.total_ns, 200_000);
        assert_eq!(sp.max_ns, 150_000);
    }

    #[test]
    fn render_contains_all_sections() {
        let text = sample().render();
        for needle in [
            "counters:",
            "histograms:",
            "stats:",
            "spans:",
            "4→1",
            "legality/cache/hits",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn coverage_keys_enumerate_counters_and_histogram_buckets() {
        let keys = sample().coverage_keys();
        // Every counter name appears verbatim…
        assert!(
            keys.contains(&"legality/cache/hits".to_string()),
            "{keys:?}"
        );
        assert!(
            keys.contains(&"search/depth.1/legal".to_string()),
            "{keys:?}"
        );
        // …every histogram bucket appears as name[value]…
        for bucket in [
            "depmap/fanout/Block[1]",
            "depmap/fanout/Block[2]",
            "depmap/fanout/Block[4]",
        ] {
            assert!(
                keys.contains(&bucket.to_string()),
                "missing {bucket}: {keys:?}"
            );
        }
        // …and timing-dependent sections are excluded.
        assert!(!keys.iter().any(|k| k.contains("score")), "{keys:?}");
        assert!(!keys.iter().any(|k| k.contains("expand")), "{keys:?}");
        // Deterministic enumeration order.
        assert_eq!(keys, sample().coverage_keys());
        assert!(Report::default().coverage_keys().is_empty());
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(Report::from_json(&Json::Null).is_err());
        let bad =
            Json::parse(r#"{"counters": {"a": -1}, "histograms": {}, "stats": {}, "spans": {}}"#)
                .unwrap();
        assert!(Report::from_json(&bad).is_err());
        let bad_bucket = Json::parse(
            r#"{"counters": {}, "histograms": {"h": {"x": 1}}, "stats": {}, "spans": {}}"#,
        )
        .unwrap();
        assert!(Report::from_json(&bad_bucket)
            .unwrap_err()
            .contains("bucket"));
    }
}
