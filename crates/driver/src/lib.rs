//! # irlt-driver — the batch optimization service
//!
//! The paper optimizes one loop nest at a time; a production system
//! serves *fleets* of them. This crate turns the [`irlt_opt::search`]
//! beam search into a batch driver:
//!
//! * [`Job`] — one nest plus its goal, search settings, and optional
//!   deadline; [`run_batch`] shards jobs across a **work-stealing worker
//!   pool** and returns one [`JobResult`] per job, in submission order.
//! * **Deadlines + cooperative cancellation** — a job whose
//!   [`CancelToken`](irlt_opt::CancelToken) fires returns its best-so-far
//!   *legal* candidate with [`JobStatus::TimedOut`]; no panic, no hang,
//!   and the rest of the batch is unaffected.
//! * **Cross-nest legality sharing** — all jobs extend candidates through
//!   one [`SharedLegalityCache`](irlt_core::SharedLegalityCache), so a
//!   subproblem discovered in one nest is replayed (bit-identically) when
//!   any other nest reaches the same `(shape, mapped set, template)` key.
//!   On capacity pressure the cache sweeps a generation and jobs fall
//!   back to scratch legality — verdict-identical by construction.
//! * **Determinism** — per-job results are a pure function of the job:
//!   independent of worker count, submission order, steal interleaving,
//!   and cache state. The workspace's `tests/driver.rs` pins this
//!   bit-for-bit at 1/4/8 threads and across shuffled submission orders.
//! * **Telemetry** — one [`Telemetry`](irlt_obs::Telemetry) handle
//!   threads through the pool (`driver/steals`, `driver/queue_depth`,
//!   `driver/cache/cross_hits`, per-job wall-time histograms) and
//!   [`BatchResult::to_json`] renders one JSON artifact describing the
//!   whole run.
//!
//! The `irlt-batch` binary wraps all of this in a CLI over `.nest`
//! corpora (a manifest file, a directory, or the built-in
//! [`demo_corpus`]).
//!
//! # Examples
//!
//! ```
//! use irlt_driver::{demo_corpus, run_batch, BatchConfig};
//!
//! let jobs = demo_corpus(16);
//! let result = run_batch(&jobs, &BatchConfig { threads: 2, ..BatchConfig::default() });
//! assert_eq!(result.jobs.len(), 16);
//! assert!(result.jobs.iter().all(|j| j.status.is_completed()));
//! // Structurally identical nests shared legality work across jobs.
//! assert!(result.cache.unwrap().cross_hits > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod corpus;
mod job;
mod manifest;
mod pool;

pub use batch::{execute_job, run_batch, BatchConfig, BatchResult, ExecOptions, Sharding};
pub use corpus::demo_corpus;
pub use job::{Job, JobResult, JobStatus};
pub use manifest::{load_manifest, ManifestError};
