//! A built-in demo corpus for examples, tests, and the CLI.

use crate::job::Job;
use irlt_ir::{parse_nest, LoopNest};
use irlt_opt::Goal;

/// The kernel families the demo corpus cycles through. Two bound
/// variants per family give 8 distinct nest shapes; corpora larger than
/// 8 repeat shapes, which is exactly what exercises cross-nest legality
/// sharing (real compilation units are full of near-identical nests).
fn kernel(family: usize, variant: usize) -> (&'static str, LoopNest) {
    let bound = if variant == 0 { "n" } else { "m" };
    let (name, src) = match family {
        0 => (
            "stencil",
            format!(
                "do i = 2, {bound} - 1\n do j = 2, {bound} - 1\n  a(i, j) = (a(i, j) + a(i - 1, j) + a(i, j - 1)) / 3\n enddo\nenddo"
            ),
        ),
        1 => (
            "matmul",
            format!(
                "do i = 1, {bound}\n do j = 1, {bound}\n  do k = 1, {bound}\n   c(i, j) = c(i, j) + a(i, k) * b(k, j)\n  enddo\n enddo\nenddo"
            ),
        ),
        2 => (
            "recurrence",
            format!(
                "do i = 2, {bound}\n do j = 1, {bound}\n  a(i, j) = a(i - 1, j) + b(i, j)\n enddo\nenddo"
            ),
        ),
        _ => (
            "elementwise",
            format!(
                "do i = 1, {bound}\n do j = 1, {bound}\n  a(i, j) = b(i, j) * 2\n enddo\nenddo"
            ),
        ),
    };
    let nest = parse_nest(&src).expect("demo kernels are well-formed");
    (name, nest)
}

/// Builds `n` jobs cycling through four small kernel families (stencil,
/// matmul, first-order recurrence, elementwise) in two bound variants
/// each, alternating between the two parallelism goals.
///
/// Search settings are kept small (`max_steps 2`, beam 6) so whole
/// corpora run quickly even in debug tests; override per job afterwards
/// if you want deeper searches.
pub fn demo_corpus(n: usize) -> Vec<Job> {
    (0..n)
        .map(|k| {
            let (family, nest) = kernel(k % 4, (k / 4) % 2);
            let goal = if k % 2 == 0 {
                Goal::OuterParallel
            } else {
                Goal::InnerParallel
            };
            Job::new(format!("{family}-{k:02}"), nest, goal).with_search(2, 6)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_unique_names_and_repeating_shapes() {
        let jobs = demo_corpus(16);
        assert_eq!(jobs.len(), 16);
        let mut names: Vec<&str> = jobs.iter().map(|j| j.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16, "names must be unique");
        // Jobs 8 slots apart reuse the same nest shape (same family and
        // bound variant) — the cross-nest sharing substrate.
        assert_eq!(jobs[0].nest.to_string(), jobs[8].nest.to_string());
        assert_ne!(jobs[0].nest.to_string(), jobs[4].nest.to_string());
    }
}
