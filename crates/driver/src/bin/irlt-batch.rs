//! `irlt-batch` — batch-optimize a corpus of loop nests.
//!
//! ```text
//! irlt-batch [CORPUS] [OPTIONS]
//!
//! CORPUS               manifest file, directory of .nest files, or a
//!                      single .nest file (default: --demo 16)
//!   --demo N           use the built-in N-job demo corpus instead
//!   --goal outer|inner optimization goal for corpus jobs (default outer)
//!   --threads N        worker threads (default: one per core)
//!   --max-steps N      sequence length cap (default 3)
//!   --beam N           beam width (default 8)
//!   --deadline-ms N    per-job wall-clock budget (default: none)
//!   --no-shared        disable the cross-nest shared legality cache
//!   --cache-capacity N shared-cache entries before a sweep
//!   --cache-shards N   lock-striped cache shards (default: auto)
//!   --cache-load PATH  warm-start from an irlt-cache/v1 snapshot
//!                      (a rejected file falls back to a cold start)
//!   --cache-save PATH  save the cache snapshot after the batch
//!   --out PATH         write the batch JSON artifact to PATH
//! ```
//!
//! Telemetry is enabled whenever `--out` is given or `IRLT_TELEMETRY`
//! is set; the artifact embeds the telemetry report, and
//! `IRLT_TELEMETRY=path.json` additionally writes the standalone
//! telemetry artifact.

use irlt_driver::{demo_corpus, load_manifest, BatchConfig, Job};
use irlt_obs::{Json, Telemetry};
use irlt_opt::Goal;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

struct Cli {
    corpus: Option<PathBuf>,
    demo: usize,
    goal: Goal,
    threads: usize,
    max_steps: usize,
    beam: usize,
    deadline: Option<Duration>,
    shared: bool,
    cache_capacity: Option<usize>,
    cache_shards: usize,
    cache_load: Option<PathBuf>,
    cache_save: Option<PathBuf>,
    out: Option<PathBuf>,
}

fn usage() -> String {
    "usage: irlt-batch [CORPUS] [--demo N] [--goal outer|inner] [--threads N] \
     [--max-steps N] [--beam N] [--deadline-ms N] [--no-shared] \
     [--cache-capacity N] [--cache-shards N] [--cache-load PATH] \
     [--cache-save PATH] [--out PATH]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        corpus: None,
        demo: 16,
        goal: Goal::OuterParallel,
        threads: 0,
        max_steps: 3,
        beam: 8,
        deadline: None,
        shared: true,
        cache_capacity: None,
        cache_shards: 0,
        cache_load: None,
        cache_save: None,
        out: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--demo" => {
                cli.demo = value("--demo")?
                    .parse()
                    .map_err(|e| format!("--demo: {e}"))?;
            }
            "--goal" => {
                cli.goal = match value("--goal")?.as_str() {
                    "outer" => Goal::OuterParallel,
                    "inner" => Goal::InnerParallel,
                    other => return Err(format!("--goal: expected outer|inner, got {other}")),
                };
            }
            "--threads" => {
                cli.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--max-steps" => {
                cli.max_steps = value("--max-steps")?
                    .parse()
                    .map_err(|e| format!("--max-steps: {e}"))?;
            }
            "--beam" => {
                cli.beam = value("--beam")?
                    .parse()
                    .map_err(|e| format!("--beam: {e}"))?;
            }
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
                cli.deadline = Some(Duration::from_millis(ms));
            }
            "--no-shared" => cli.shared = false,
            "--cache-capacity" => {
                cli.cache_capacity = Some(
                    value("--cache-capacity")?
                        .parse()
                        .map_err(|e| format!("--cache-capacity: {e}"))?,
                );
            }
            "--cache-shards" => {
                cli.cache_shards = value("--cache-shards")?
                    .parse()
                    .map_err(|e| format!("--cache-shards: {e}"))?;
            }
            "--cache-load" => cli.cache_load = Some(PathBuf::from(value("--cache-load")?)),
            "--cache-save" => cli.cache_save = Some(PathBuf::from(value("--cache-save")?)),
            "--out" => cli.out = Some(PathBuf::from(value("--out")?)),
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}\n{}", usage()));
            }
            path => {
                if cli.corpus.is_some() {
                    return Err(format!("only one corpus path allowed\n{}", usage()));
                }
                cli.corpus = Some(PathBuf::from(path));
            }
        }
    }
    Ok(cli)
}

fn build_jobs(cli: &Cli) -> Result<Vec<Job>, String> {
    let mut jobs = match &cli.corpus {
        Some(path) => load_manifest(Path::new(path), &cli.goal).map_err(|e| e.to_string())?,
        None => demo_corpus(cli.demo),
    };
    for job in &mut jobs {
        job.max_steps = cli.max_steps;
        job.beam_width = cli.beam;
        job.deadline = cli.deadline;
    }
    Ok(jobs)
}

fn run(args: &[String]) -> Result<(), String> {
    let cli = parse_args(args)?;
    let jobs = build_jobs(&cli)?;
    let telemetry = if cli.out.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::from_env()
    };
    let mut config = BatchConfig {
        threads: cli.threads,
        shared_cache: cli.shared,
        cache_shards: cli.cache_shards,
        cache_load: cli.cache_load.clone(),
        cache_save: cli.cache_save.clone(),
        telemetry,
        ..BatchConfig::default()
    };
    if let Some(cap) = cli.cache_capacity {
        config.cache_capacity = cap;
    }
    let result = irlt_driver::run_batch(&jobs, &config);
    for job in &result.jobs {
        println!("{job}");
    }
    println!("{result}");
    if let Some(out) = &cli.out {
        let mut artifact = result.to_json();
        if let Json::Object(fields) = &mut artifact {
            fields.push(("telemetry".to_string(), config.telemetry.report().to_json()));
        }
        std::fs::write(out, artifact.to_string_pretty())
            .map_err(|e| format!("{}: {e}", out.display()))?;
        println!("wrote batch artifact to {}", out.display());
    }
    if let Some(path) = config
        .telemetry
        .write_env_report()
        .map_err(|e| format!("telemetry artifact: {e}"))?
    {
        println!("wrote telemetry to {}", path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
