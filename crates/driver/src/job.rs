//! Batch jobs and their results.

use irlt_ir::LoopNest;
use irlt_obs::Json;
use irlt_opt::{Candidate, Goal, MoveCatalog, SearchConfig};
use std::fmt;
use std::time::Duration;

/// One unit of batch work: a loop nest, the goal to optimize it for, the
/// search settings, and an optional wall-clock deadline.
///
/// # Examples
///
/// ```
/// use irlt_driver::Job;
/// use irlt_ir::parse_nest;
/// use irlt_opt::Goal;
/// use std::time::Duration;
///
/// let nest = parse_nest("do i = 1, n\n a(i) = 0\nenddo")?;
/// let job = Job::new("tiny", nest, Goal::OuterParallel)
///     .with_search(2, 4)
///     .with_deadline(Duration::from_millis(50));
/// assert_eq!(job.name, "tiny");
/// assert_eq!(job.max_steps, 2);
/// # Ok::<(), irlt_ir::ParseError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Job {
    /// Stable identifier; results are reported under it.
    pub name: String,
    /// The nest to optimize (dependences are analyzed by the worker).
    pub nest: LoopNest,
    /// The optimization goal.
    pub goal: Goal,
    /// Candidate moves per expansion.
    pub catalog: MoveCatalog,
    /// Maximum sequence length.
    pub max_steps: usize,
    /// Beam width.
    pub beam_width: usize,
    /// Wall-clock budget: when it expires the job returns its
    /// best-so-far candidate as [`JobStatus::TimedOut`]. `None` runs to
    /// completion.
    pub deadline: Option<Duration>,
}

impl Job {
    /// A job with the default search settings (those of
    /// [`SearchConfig::default`]) and no deadline.
    pub fn new(name: impl Into<String>, nest: LoopNest, goal: Goal) -> Job {
        let defaults = SearchConfig::default();
        Job {
            name: name.into(),
            nest,
            goal,
            catalog: defaults.catalog,
            max_steps: defaults.max_steps,
            beam_width: defaults.beam_width,
            deadline: None,
        }
    }

    /// Overrides the search depth and beam width.
    #[must_use]
    pub fn with_search(mut self, max_steps: usize, beam_width: usize) -> Job {
        self.max_steps = max_steps;
        self.beam_width = beam_width;
        self
    }

    /// Overrides the move catalog.
    #[must_use]
    pub fn with_catalog(mut self, catalog: MoveCatalog) -> Job {
        self.catalog = catalog;
        self
    }

    /// Sets the wall-clock budget.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Job {
        self.deadline = Some(deadline);
        self
    }
}

/// How a job ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// The search ran to completion.
    Completed,
    /// The deadline fired first: the result holds the best *legal*
    /// candidate found before cancellation (at worst the identity).
    TimedOut,
}

impl JobStatus {
    /// True for [`JobStatus::Completed`].
    pub fn is_completed(self) -> bool {
        self == JobStatus::Completed
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JobStatus::Completed => "completed",
            JobStatus::TimedOut => "timed_out",
        })
    }
}

/// The outcome of one job.
///
/// Everything except [`wall`](JobResult::wall) and
/// [`worker`](JobResult::worker) is deterministic: a pure function of the
/// [`Job`], independent of thread count, submission order, and shared
/// cache state.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The job's name.
    pub name: String,
    /// How the job ended.
    pub status: JobStatus,
    /// The best legal candidate (sequence, score, transformed shape).
    pub best: Candidate,
    /// Candidates legality-tested.
    pub explored: usize,
    /// Candidates that passed the legality test.
    pub legal: usize,
    /// Wall time the search took (nondeterministic).
    pub wall: Duration,
    /// Which worker ran the job (nondeterministic under stealing).
    pub worker: usize,
}

impl JobResult {
    /// JSON rendering for the batch artifact.
    pub fn to_json(&self) -> Json {
        let score = if self.best.score.is_finite() {
            Json::Float(self.best.score)
        } else {
            Json::Null
        };
        Json::Object(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("status".into(), Json::Str(self.status.to_string())),
            ("seq".into(), Json::Str(self.best.seq.to_string())),
            ("score".into(), score),
            ("explored".into(), Json::Int(self.explored as i64)),
            ("legal".into(), Json::Int(self.legal as i64)),
            ("wall_ms".into(), Json::Float(self.wall.as_secs_f64() * 1e3)),
            ("worker".into(), Json::Int(self.worker as i64)),
        ])
    }
}

impl fmt::Display for JobResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} best {} (score {:.1}; {} tested, {} legal)",
            self.name, self.status, self.best.seq, self.best.score, self.explored, self.legal
        )
    }
}
