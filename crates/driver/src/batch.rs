//! The batch runner: shard, steal, search, aggregate.

use crate::job::{Job, JobResult, JobStatus};
use crate::pool::WorkQueues;
use irlt_core::{KeyMode, SharedCacheStats, SharedLegalityCache, SnapshotLoadStats};
use irlt_dependence::analyze_dependences;
use irlt_obs::{Json, Telemetry};
use irlt_opt::{search, CancelToken, SearchConfig};
use std::fmt;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How jobs are distributed over the worker queues before the pool
/// starts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Sharding {
    /// Job `k` starts on worker `k mod workers` — balanced, steals only
    /// correct imbalance in job *cost*.
    #[default]
    RoundRobin,
    /// Every job starts on worker 0 — maximally unbalanced, so every
    /// other worker must steal to contribute. Useful for exercising the
    /// stealing path deterministically; results are identical either way.
    Single,
}

/// Batch-level configuration (per-job settings live on [`Job`]).
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Worker threads: `0` uses one per available core.
    pub threads: usize,
    /// Share one [`SharedLegalityCache`] across all jobs (bit-identical
    /// results either way; sharing only saves work).
    pub shared_cache: bool,
    /// Entry capacity of the shared cache before a generational sweep —
    /// the memory-pressure degradation knob.
    pub cache_capacity: usize,
    /// Lock-striped shards of the shared cache: `0` (the default)
    /// auto-sizes to `next_power_of_two(workers * 4)` so probes rarely
    /// collide on a stripe. Results are bit-identical for every shard
    /// count.
    pub cache_shards: usize,
    /// Warm-start: load this `irlt-cache/v1` snapshot into the shared
    /// cache before the batch starts. A missing or rejected file
    /// degrades to a clean cold start (warning on stderr,
    /// `driver/cache/snapshot_rejected` counter) — never an error.
    pub cache_load: Option<PathBuf>,
    /// Save the shared cache as an `irlt-cache/v1` snapshot after the
    /// batch, so the next run can `cache_load` it.
    pub cache_save: Option<PathBuf>,
    /// Initial job distribution.
    pub sharding: Sharding,
    /// Per-job search engine selection (see
    /// [`SearchConfig::incremental`]); the shared cache requires the
    /// incremental engine and is skipped without it.
    pub incremental: bool,
    /// Subsumption pruning of cached dependence sets.
    pub prune: bool,
    /// How shared-cache keys are represented (see [`KeyMode`]).
    /// `Fingerprint` (the default) probes on interned ids with zero
    /// allocation; `Display` keeps the legacy rendered-string keys for
    /// apples-to-apples benchmarking. Results are bit-identical.
    pub key_mode: KeyMode,
    /// One sink for the whole pool; disabled by default (no-op, and the
    /// batch is bit-identical with it on or off).
    pub telemetry: Telemetry,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            threads: 0,
            shared_cache: true,
            cache_capacity: SharedLegalityCache::DEFAULT_CAPACITY,
            cache_shards: 0,
            cache_load: None,
            cache_save: None,
            sharding: Sharding::RoundRobin,
            incremental: true,
            prune: true,
            key_mode: KeyMode::default(),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// The outcome of one batch run.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// Per-job results **in submission order** (never scheduler order).
    pub jobs: Vec<JobResult>,
    /// Worker threads the pool actually ran.
    pub workers: usize,
    /// Successful steals across the run.
    pub steals: u64,
    /// Shared-cache counters, when the cache was enabled.
    pub cache: Option<SharedCacheStats>,
    /// What the warm-start snapshot restored, when one loaded.
    pub snapshot: Option<SnapshotLoadStats>,
    /// Whether a requested warm-start snapshot was rejected (the batch
    /// then ran cold).
    pub snapshot_rejected: bool,
    /// Wall time of the whole batch.
    pub wall: Duration,
}

impl BatchResult {
    /// Jobs that ran to completion.
    pub fn completed(&self) -> usize {
        self.jobs.iter().filter(|j| j.status.is_completed()).count()
    }

    /// Jobs cut short by their deadline.
    pub fn timed_out(&self) -> usize {
        self.jobs.len() - self.completed()
    }

    /// One JSON artifact describing the whole run: per-job results,
    /// pool/steal counters, cache stats, and wall time. Pairs with the
    /// telemetry report (`Telemetry::report().to_json()`) for the full
    /// picture.
    pub fn to_json(&self) -> Json {
        let cache = match &self.cache {
            None => Json::Null,
            Some(s) => Json::Object(vec![
                ("hits".into(), Json::Int(s.hits as i64)),
                ("cross_hits".into(), Json::Int(s.cross_hits as i64)),
                ("misses".into(), Json::Int(s.misses as i64)),
                ("inserts".into(), Json::Int(s.inserts as i64)),
                ("evictions".into(), Json::Int(s.evictions as i64)),
                ("entries".into(), Json::Int(s.entries as i64)),
                ("shards".into(), Json::Int(s.shards as i64)),
                ("contended".into(), Json::Int(s.contended as i64)),
                (
                    "snapshot_entries".into(),
                    Json::Int(s.snapshot_entries as i64),
                ),
                ("snapshot_hits".into(), Json::Int(s.snapshot_hits as i64)),
                (
                    "snapshot_rejected".into(),
                    Json::Bool(self.snapshot_rejected),
                ),
                ("key_probes".into(), Json::Int(s.key_probes as i64)),
                ("interned".into(), Json::Int(s.interned_values as i64)),
                ("interner_hits".into(), Json::Int(s.interner_hits as i64)),
                (
                    "interner_verifies".into(),
                    Json::Int(s.interner_verifies as i64),
                ),
                (
                    "interner_collisions".into(),
                    Json::Int(s.interner_collisions as i64),
                ),
            ]),
        };
        Json::Object(vec![
            ("schema".into(), Json::Str("irlt-batch/v1".into())),
            ("workers".into(), Json::Int(self.workers as i64)),
            ("steals".into(), Json::Int(self.steals as i64)),
            ("wall_ms".into(), Json::Float(self.wall.as_secs_f64() * 1e3)),
            (
                "summary".into(),
                Json::Object(vec![
                    ("jobs".into(), Json::Int(self.jobs.len() as i64)),
                    ("completed".into(), Json::Int(self.completed() as i64)),
                    ("timed_out".into(), Json::Int(self.timed_out() as i64)),
                ]),
            ),
            ("cache".into(), cache),
            (
                "jobs".into(),
                Json::Array(self.jobs.iter().map(JobResult::to_json).collect()),
            ),
        ])
    }
}

impl fmt::Display for BatchResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} job(s) on {} worker(s) in {:.1} ms: {} completed, {} timed out, {} steal(s)",
            self.jobs.len(),
            self.workers,
            self.wall.as_secs_f64() * 1e3,
            self.completed(),
            self.timed_out(),
            self.steals
        )?;
        if let Some(s) = &self.cache {
            write!(f, "; cache: {s}")?;
        }
        if let Some(s) = &self.snapshot {
            write!(f, "; warm start: {} snapshot entries", s.entries_loaded)?;
        } else if self.snapshot_rejected {
            write!(f, "; warm start rejected (ran cold)")?;
        }
        Ok(())
    }
}

/// Runs every job to a result, sharded across a work-stealing pool.
///
/// Per-job results are **deterministic**: bit-identical across worker
/// counts, submission orders, sharding policies, cache capacities, and
/// telemetry on/off. Jobs with deadlines come back as
/// [`JobStatus::TimedOut`] holding the best legal candidate found in
/// budget; everything else in the batch is unaffected. All workers are
/// joined before this returns (`std::thread::scope` — no thread leaks,
/// even if a job panics).
pub fn run_batch(jobs: &[Job], config: &BatchConfig) -> BatchResult {
    let start = Instant::now();
    let workers = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        config.threads
    };
    let tel = &config.telemetry;
    // The shared cache only serves the incremental engine (it memoizes
    // SeqState extensions); the scratch engine ignores it.
    let cache = (config.shared_cache && config.incremental).then(|| {
        let shards = if config.cache_shards == 0 {
            (workers * 4).next_power_of_two()
        } else {
            config.cache_shards
        };
        SharedLegalityCache::with_config(config.cache_capacity, shards, config.key_mode)
    });
    // Warm start. Any failure — unreadable file, bad magic/version,
    // truncation, checksum mismatch, malformed payload — degrades to a
    // cold start with the cache untouched.
    let mut snapshot = None;
    let mut snapshot_rejected = false;
    if let (Some(cache), Some(path)) = (&cache, &config.cache_load) {
        let loaded = std::fs::read(path)
            .map_err(|e| e.to_string())
            .and_then(|bytes| cache.load_snapshot(&bytes).map_err(|e| e.to_string()));
        match loaded {
            Ok(stats) => snapshot = Some(stats),
            Err(why) => {
                eprintln!(
                    "warning: cache snapshot {} rejected ({why}); starting cold",
                    path.display()
                );
                snapshot_rejected = true;
                if tel.is_enabled() {
                    tel.incr("driver/cache/snapshot_rejected");
                }
            }
        }
    }
    let queues = WorkQueues::new(workers);
    for (k, _) in jobs.iter().enumerate() {
        match config.sharding {
            Sharding::RoundRobin => queues.push(k, k),
            Sharding::Single => queues.push(0, k),
        }
    }
    let slots: Vec<Mutex<Option<JobResult>>> = jobs.iter().map(|_| Mutex::default()).collect();
    // No worker pops until every worker exists: under Sharding::Single
    // the thieves are guaranteed at least one look at a loaded queue.
    let start_gate = std::sync::Barrier::new(queues.workers());
    std::thread::scope(|scope| {
        for w in 0..queues.workers() {
            let queues = &queues;
            let slots = &slots;
            let gate = &start_gate;
            let cache = cache.clone();
            scope.spawn(move || {
                gate.wait();
                let opts = ExecOptions {
                    incremental: config.incremental,
                    prune: config.prune,
                    telemetry: config.telemetry.clone(),
                    cancel: None,
                };
                while let Some(popped) = queues.pop(w) {
                    if tel.is_enabled() {
                        tel.observe("driver/queue_depth", queues.remaining() as f64);
                    }
                    let job = &jobs[popped.job];
                    let result = execute_job(job, popped.job as u64, w, cache.as_ref(), &opts);
                    *slots[popped.job]
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(result);
                }
            });
        }
    });
    let results: Vec<JobResult> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .expect("every queued job ran exactly once")
        })
        .collect();
    let steals = queues.steals();
    let cache_stats = cache.as_ref().map(SharedLegalityCache::stats);
    let wall = start.elapsed();
    if tel.is_enabled() {
        tel.count("driver/jobs", results.len() as u64);
        tel.count("driver/workers", workers as u64);
        tel.count("driver/steals", steals);
        tel.count(
            "driver/completed",
            results.iter().filter(|j| j.status.is_completed()).count() as u64,
        );
        tel.count(
            "driver/timed_out",
            results.iter().filter(|j| !j.status.is_completed()).count() as u64,
        );
        for r in &results {
            // Power-of-two microsecond buckets keep the histogram compact
            // across the µs–s range.
            let us = (r.wall.as_micros() as u64).max(1);
            tel.record("driver/job_wall_us", us.next_power_of_two());
            tel.record_span("driver/job", r.wall);
        }
        if let Some(s) = &cache_stats {
            tel.count("driver/cache/hits", s.hits);
            tel.count("driver/cache/cross_hits", s.cross_hits);
            tel.count("driver/cache/misses", s.misses);
            tel.count("driver/cache/inserts", s.inserts);
            tel.count("driver/cache/evictions", s.evictions);
            tel.count("legality/cache/contended", s.contended);
            tel.count("driver/cache/snapshot_entries", s.snapshot_entries);
            tel.count("driver/cache/snapshot_hits", s.snapshot_hits);
            if let Some(cache) = &cache {
                for (n, shard) in cache.shard_stats().iter().enumerate() {
                    tel.count(&format!("legality/cache/shard.{n}/hits"), shard.hits);
                    tel.count(&format!("legality/cache/shard.{n}/misses"), shard.misses);
                    tel.count(
                        &format!("legality/cache/shard.{n}/evictions"),
                        shard.evictions,
                    );
                }
            }
            // Key-representation counters (the `legality/key/probes`
            // counter itself is incremented per-probe by `SeqState`).
            tel.count("legality/key/verifies", s.interner_verifies);
            tel.count("legality/key/collisions", s.interner_collisions);
            tel.count("legality/key/interned", s.interned_values);
            tel.count("legality/key/interner_hits", s.interner_hits);
        }
        tel.record_span("driver/batch", wall);
    }
    // Persist the warmed cache for the next run. A save failure is a
    // warning, not a batch failure — the results are already computed.
    if let (Some(cache), Some(path)) = (&cache, &config.cache_save) {
        let saved = cache
            .save_snapshot()
            .map_err(|e| e.to_string())
            .and_then(|bytes| std::fs::write(path, &bytes).map_err(|e| e.to_string()));
        if let Err(why) = saved {
            eprintln!(
                "warning: cache snapshot {} not saved ({why})",
                path.display()
            );
        }
    }
    BatchResult {
        jobs: results,
        workers,
        steals,
        cache: cache_stats,
        snapshot,
        snapshot_rejected,
        wall,
    }
}

/// Engine settings for executing one job outside a batch — the
/// *request adapter* long-lived services (`irlt-serve`) share with
/// [`run_batch`]. Everything that affects results is here; everything
/// that affects scheduling (threads, sharding, queues) is the caller's
/// business.
#[derive(Clone, Debug)]
pub struct ExecOptions {
    /// Use the incremental legality engine (see
    /// [`SearchConfig::incremental`]).
    pub incremental: bool,
    /// Subsumption pruning of cached dependence sets.
    pub prune: bool,
    /// Telemetry sink; disabled by default and bit-identical either way.
    pub telemetry: Telemetry,
    /// Cancellation override. When set, this token governs the search
    /// instead of a fresh [`CancelToken::with_deadline`] built from
    /// [`Job::deadline`] — a service arms the token at *admission* so
    /// the SLO covers queueing, not just compute, and can also fire it
    /// on client disconnect or drain.
    pub cancel: Option<CancelToken>,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions {
            incremental: true,
            prune: true,
            telemetry: Telemetry::disabled(),
            cancel: None,
        }
    }
}

/// Executes one job: analyze dependences, arm the deadline, search
/// serially (parallelism across jobs is the scheduler's job, not the
/// engine's).
///
/// The result's deterministic fields are a pure function of the
/// [`Job`] and the engine flags — independent of `owner`, `worker`,
/// cache contents, and telemetry. A fired cancellation (deadline or
/// [`ExecOptions::cancel`]) returns the best *legal* candidate found
/// so far (at worst the identity) as [`JobStatus::TimedOut`]; it never
/// panics or hangs.
pub fn execute_job(
    job: &Job,
    owner: u64,
    worker: usize,
    cache: Option<&SharedLegalityCache>,
    opts: &ExecOptions,
) -> JobResult {
    let deps = analyze_dependences(&job.nest);
    let cancel = opts
        .cancel
        .clone()
        .or_else(|| job.deadline.map(CancelToken::with_deadline));
    let cfg = SearchConfig {
        catalog: job.catalog.clone(),
        max_steps: job.max_steps,
        beam_width: job.beam_width,
        threads: 1,
        incremental: opts.incremental,
        prune: opts.prune,
        telemetry: opts.telemetry.clone(),
        shared: cache.cloned(),
        owner,
        cancel,
    };
    let start = Instant::now();
    let r = search(&job.nest, &deps, &job.goal, &cfg);
    JobResult {
        name: job.name.clone(),
        status: if r.timed_out {
            JobStatus::TimedOut
        } else {
            JobStatus::Completed
        },
        best: r.best,
        explored: r.explored,
        legal: r.legal,
        wall: start.elapsed(),
        worker,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::demo_corpus;

    fn serial() -> BatchConfig {
        BatchConfig {
            threads: 1,
            ..BatchConfig::default()
        }
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let jobs = demo_corpus(6);
        let r = run_batch(&jobs, &serial());
        let names: Vec<&str> = r.jobs.iter().map(|j| j.name.as_str()).collect();
        let expected: Vec<&str> = jobs.iter().map(|j| j.name.as_str()).collect();
        assert_eq!(names, expected);
        assert_eq!(r.completed(), 6);
        assert_eq!(r.timed_out(), 0);
        assert_eq!(r.workers, 1);
        assert_eq!(r.steals, 0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let r = run_batch(&[], &serial());
        assert!(r.jobs.is_empty());
        assert_eq!(r.completed(), 0);
        assert!(r.to_json().get("summary").is_some());
    }

    #[test]
    fn shared_cache_reports_cross_hits_on_duplicates() {
        // demo_corpus cycles 8 distinct nest shapes: jobs 8.. re-derive
        // the subproblems jobs 0..8 deposited.
        let jobs = demo_corpus(16);
        let r = run_batch(&jobs, &serial());
        let stats = r.cache.expect("cache on by default");
        assert!(stats.cross_hits > 0, "{stats}");
        let off = run_batch(
            &jobs,
            &BatchConfig {
                shared_cache: false,
                ..serial()
            },
        );
        assert!(off.cache.is_none());
        for (a, b) in r.jobs.iter().zip(&off.jobs) {
            assert_eq!(a.best.seq.to_string(), b.best.seq.to_string());
            assert_eq!(a.best.score.to_bits(), b.best.score.to_bits());
            assert_eq!(a.explored, b.explored);
        }
    }

    #[test]
    fn key_modes_agree_and_surface_in_json() {
        let jobs = demo_corpus(8);
        let fp = run_batch(&jobs, &serial());
        let legacy = run_batch(
            &jobs,
            &BatchConfig {
                key_mode: KeyMode::Display,
                ..serial()
            },
        );
        for (a, b) in fp.jobs.iter().zip(&legacy.jobs) {
            assert_eq!(a.best.seq.to_string(), b.best.seq.to_string());
            assert_eq!(a.best.score.to_bits(), b.best.score.to_bits());
            assert_eq!(a.explored, b.explored);
        }
        let s = fp.cache.expect("cache on by default");
        assert!(s.key_probes > 0, "{s}");
        assert!(s.interned_values > 0, "{s}");
        assert_eq!(s.interner_collisions, 0, "{s}");
        // Legacy string keys never touch the interner pools.
        let l = legacy.cache.expect("cache on by default");
        assert_eq!(l.interned_values, 0, "{l}");
        let j = fp.to_json();
        assert!(j.get_path(&["cache", "key_probes"]).is_some());
        assert!(j.get_path(&["cache", "interned"]).is_some());
    }

    #[test]
    fn json_artifact_has_the_batch_shape() {
        let jobs = demo_corpus(3);
        let r = run_batch(&jobs, &serial());
        let j = r.to_json();
        assert_eq!(
            j.get("schema").and_then(Json::as_str),
            Some("irlt-batch/v1")
        );
        assert_eq!(
            j.get_path(&["summary", "jobs"]).and_then(Json::as_i64),
            Some(3)
        );
        assert_eq!(
            j.get("jobs").and_then(Json::as_array).map(<[Json]>::len),
            Some(3)
        );
        assert!(j.get_path(&["cache", "hits"]).is_some());
        // Round-trips through the parser.
        let text = j.to_string_pretty();
        assert_eq!(Json::parse(&text).unwrap(), j);
        assert!(r.to_string().contains("3 job(s)"), "{r}");
    }
}
