//! Loading job corpora from the filesystem.
//!
//! Three accepted shapes, disambiguated by inspection:
//!
//! * a **directory** — every `*.nest` file in it, sorted by file name;
//! * a single **`.nest` file** — one job;
//! * any other file — a **manifest**: one `.nest` path per line
//!   (relative paths resolve against the manifest's own directory;
//!   blank lines and `#` comments are ignored).
//!
//! Job names are the `.nest` files' stems, so results in the batch
//! artifact are traceable back to sources.

use crate::job::Job;
use irlt_ir::{parse_nest, ParseError};
use irlt_opt::Goal;
use std::fmt;
use std::path::{Path, PathBuf};

/// Why a corpus failed to load.
#[derive(Debug)]
pub enum ManifestError {
    /// A filesystem read failed.
    Io(PathBuf, std::io::Error),
    /// A `.nest` source failed to parse.
    Parse(PathBuf, ParseError),
    /// The manifest or directory yielded no jobs at all.
    Empty(PathBuf),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            ManifestError::Parse(p, e) => write!(f, "{}: {e}", p.display()),
            ManifestError::Empty(p) => write!(f, "{}: no .nest sources found", p.display()),
        }
    }
}

impl std::error::Error for ManifestError {}

fn job_from_file(path: &Path, goal: &Goal) -> Result<Job, ManifestError> {
    let src =
        std::fs::read_to_string(path).map_err(|e| ManifestError::Io(path.to_path_buf(), e))?;
    let nest = parse_nest(&src).map_err(|e| ManifestError::Parse(path.to_path_buf(), e))?;
    let name = path.file_stem().map_or_else(
        || path.display().to_string(),
        |s| s.to_string_lossy().into_owned(),
    );
    Ok(Job::new(name, nest, goal.clone()))
}

/// Loads a corpus of jobs from `path` (directory, `.nest` file, or
/// manifest — see the module docs), all targeting `goal`.
pub fn load_manifest(path: &Path, goal: &Goal) -> Result<Vec<Job>, ManifestError> {
    let mut jobs = Vec::new();
    if path.is_dir() {
        let entries =
            std::fs::read_dir(path).map_err(|e| ManifestError::Io(path.to_path_buf(), e))?;
        let mut sources: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "nest"))
            .collect();
        // Directory iteration order is platform-defined; sorting keeps
        // submission order (and thus the artifact) reproducible.
        sources.sort();
        for source in sources {
            jobs.push(job_from_file(&source, goal)?);
        }
    } else if path.extension().is_some_and(|x| x == "nest") {
        jobs.push(job_from_file(path, goal)?);
    } else {
        let text =
            std::fs::read_to_string(path).map_err(|e| ManifestError::Io(path.to_path_buf(), e))?;
        let base = path.parent().unwrap_or_else(|| Path::new("."));
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            jobs.push(job_from_file(&base.join(line), goal)?);
        }
    }
    if jobs.is_empty() {
        return Err(ManifestError::Empty(path.to_path_buf()));
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("irlt-driver-manifest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn directory_loads_sorted_and_named_by_stem() {
        let dir = scratch_dir("dir");
        std::fs::write(dir.join("b.nest"), "do i = 1, n\n a(i) = 0\nenddo").unwrap();
        std::fs::write(dir.join("a.nest"), "do j = 1, m\n b(j) = 1\nenddo").unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let jobs = load_manifest(&dir, &Goal::OuterParallel).unwrap();
        let names: Vec<&str> = jobs.iter().map(|j| j.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_resolves_relative_to_its_own_directory() {
        let dir = scratch_dir("rel");
        std::fs::create_dir_all(dir.join("kernels")).unwrap();
        std::fs::write(
            dir.join("kernels/k.nest"),
            "do i = 1, n\n a(i) = a(i) + 1\nenddo",
        )
        .unwrap();
        std::fs::write(dir.join("corpus.txt"), "# a comment\n\nkernels/k.nest\n").unwrap();
        let jobs = load_manifest(&dir.join("corpus.txt"), &Goal::InnerParallel).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].name, "k");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_and_broken_corpora_are_reported() {
        let dir = scratch_dir("err");
        assert!(matches!(
            load_manifest(&dir, &Goal::OuterParallel),
            Err(ManifestError::Empty(_))
        ));
        std::fs::write(dir.join("bad.nest"), "this is not a loop nest").unwrap();
        let err = load_manifest(&dir, &Goal::OuterParallel).unwrap_err();
        assert!(matches!(err, ManifestError::Parse(_, _)), "{err}");
        assert!(err.to_string().contains("bad.nest"));
        let missing = load_manifest(&dir.join("absent.list"), &Goal::OuterParallel).unwrap_err();
        assert!(matches!(missing, ManifestError::Io(_, _)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
