//! Loading job corpora from the filesystem.
//!
//! Three accepted shapes, disambiguated by inspection:
//!
//! * a **directory** — every `*.nest` file in it, sorted by file name;
//! * a single **`.nest` file** — one job;
//! * any other file — a **manifest**: one `.nest` path per line
//!   (relative paths resolve against the manifest's own directory;
//!   blank lines and `#` comments are ignored).
//!
//! Job names are the `.nest` files' stems, so results in the batch
//! artifact are traceable back to sources.

use crate::job::Job;
use irlt_ir::{parse_nest, ParseError};
use irlt_opt::Goal;
use std::fmt;
use std::path::{Path, PathBuf};

/// Why a corpus failed to load.
#[derive(Debug)]
pub enum ManifestError {
    /// A filesystem read failed (missing file, permission, a directory
    /// where a file was expected, or non-UTF-8 contents).
    Io(PathBuf, std::io::Error),
    /// A `.nest` source failed to parse.
    Parse(PathBuf, ParseError),
    /// A manifest line is not a usable `.nest` reference (wrong
    /// extension, embedded NUL, …). Carries the manifest path, the
    /// 1-based line number, and the reason.
    BadLine {
        /// The manifest file containing the offending line.
        manifest: PathBuf,
        /// 1-based line number.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The manifest or directory yielded no jobs at all.
    Empty(PathBuf),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            ManifestError::Parse(p, e) => write!(f, "{}: {e}", p.display()),
            ManifestError::BadLine {
                manifest,
                line,
                reason,
            } => write!(f, "{} line {line}: {reason}", manifest.display()),
            ManifestError::Empty(p) => write!(f, "{}: no .nest sources found", p.display()),
        }
    }
}

impl std::error::Error for ManifestError {}

fn job_from_file(path: &Path, goal: &Goal) -> Result<Job, ManifestError> {
    // `read_to_string` turns every filesystem misfortune — missing
    // file, directory-as-file, permissions, invalid UTF-8 — into a
    // typed `Io` error; nothing on this path panics.
    let src =
        std::fs::read_to_string(path).map_err(|e| ManifestError::Io(path.to_path_buf(), e))?;
    let nest = parse_nest(&src).map_err(|e| ManifestError::Parse(path.to_path_buf(), e))?;
    let name = path.file_stem().map_or_else(
        || path.display().to_string(),
        |s| s.to_string_lossy().into_owned(),
    );
    Ok(Job::new(name, nest, goal.clone()))
}

/// Validates one non-comment manifest line before touching the
/// filesystem: it must name a `.nest` file and be a well-formed path.
fn check_manifest_line(manifest: &Path, number: usize, line: &str) -> Result<(), ManifestError> {
    let bad = |reason: String| ManifestError::BadLine {
        manifest: manifest.to_path_buf(),
        line: number,
        reason,
    };
    if line.contains('\0') {
        return Err(bad("path contains a NUL byte".into()));
    }
    if Path::new(line).extension().is_none_or(|x| x != "nest") {
        return Err(bad(format!(
            "`{line}` does not name a .nest file (manifests list one .nest path per line)"
        )));
    }
    Ok(())
}

/// Loads a corpus of jobs from `path` (directory, `.nest` file, or
/// manifest — see the module docs), all targeting `goal`.
pub fn load_manifest(path: &Path, goal: &Goal) -> Result<Vec<Job>, ManifestError> {
    let mut jobs = Vec::new();
    if path.is_dir() {
        let entries =
            std::fs::read_dir(path).map_err(|e| ManifestError::Io(path.to_path_buf(), e))?;
        let mut sources: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "nest"))
            .collect();
        // Directory iteration order is platform-defined; sorting keeps
        // submission order (and thus the artifact) reproducible.
        sources.sort();
        for source in sources {
            jobs.push(job_from_file(&source, goal)?);
        }
    } else if path.extension().is_some_and(|x| x == "nest") {
        jobs.push(job_from_file(path, goal)?);
    } else {
        let text =
            std::fs::read_to_string(path).map_err(|e| ManifestError::Io(path.to_path_buf(), e))?;
        let base = path.parent().unwrap_or_else(|| Path::new("."));
        for (k, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            check_manifest_line(path, k + 1, line)?;
            jobs.push(job_from_file(&base.join(line), goal)?);
        }
    }
    if jobs.is_empty() {
        return Err(ManifestError::Empty(path.to_path_buf()));
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("irlt-driver-manifest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn directory_loads_sorted_and_named_by_stem() {
        let dir = scratch_dir("dir");
        std::fs::write(dir.join("b.nest"), "do i = 1, n\n a(i) = 0\nenddo").unwrap();
        std::fs::write(dir.join("a.nest"), "do j = 1, m\n b(j) = 1\nenddo").unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let jobs = load_manifest(&dir, &Goal::OuterParallel).unwrap();
        let names: Vec<&str> = jobs.iter().map(|j| j.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_resolves_relative_to_its_own_directory() {
        let dir = scratch_dir("rel");
        std::fs::create_dir_all(dir.join("kernels")).unwrap();
        std::fs::write(
            dir.join("kernels/k.nest"),
            "do i = 1, n\n a(i) = a(i) + 1\nenddo",
        )
        .unwrap();
        std::fs::write(dir.join("corpus.txt"), "# a comment\n\nkernels/k.nest\n").unwrap();
        let jobs = load_manifest(&dir.join("corpus.txt"), &Goal::InnerParallel).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].name, "k");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite sweep: every malformed manifest/`.nest` shape comes
    /// back as a *typed* [`ManifestError`] — never a panic.
    #[test]
    fn malformed_manifest_lines_are_typed_errors() {
        let dir = scratch_dir("badline");
        std::fs::write(dir.join("ok.nest"), "do i = 1, n\n a(i) = 0\nenddo").unwrap();

        // A line naming a non-.nest file.
        std::fs::write(dir.join("m1.txt"), "ok.nest\nnotes.txt\n").unwrap();
        let e = load_manifest(&dir.join("m1.txt"), &Goal::OuterParallel).unwrap_err();
        assert!(matches!(e, ManifestError::BadLine { line: 2, .. }), "{e:?}");
        assert!(e.to_string().contains("line 2"), "{e}");

        // A line with no extension at all.
        std::fs::write(dir.join("m2.txt"), "kernels\n").unwrap();
        let e = load_manifest(&dir.join("m2.txt"), &Goal::OuterParallel).unwrap_err();
        assert!(matches!(e, ManifestError::BadLine { line: 1, .. }), "{e}");

        // A line with an embedded NUL byte.
        std::fs::write(dir.join("m3.txt"), "bad\0path.nest\n").unwrap();
        let e = load_manifest(&dir.join("m3.txt"), &Goal::OuterParallel).unwrap_err();
        assert!(matches!(e, ManifestError::BadLine { .. }), "{e}");
        assert!(e.to_string().contains("NUL"), "{e}");

        // Comment and blank lines never trip the check.
        std::fs::write(dir.join("m4.txt"), "# header\n\nok.nest\n").unwrap();
        let jobs = load_manifest(&dir.join("m4.txt"), &Goal::OuterParallel).unwrap();
        assert_eq!(jobs.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unreadable_nest_sources_are_typed_errors() {
        let dir = scratch_dir("unreadable");

        // A directory named like a .nest file: loaded directly it is
        // treated as a (here: empty) directory corpus — the documented
        // disambiguation-by-inspection — while a manifest line naming
        // it tries to *read* it and gets a typed Io error.
        std::fs::create_dir_all(dir.join("dir.nest")).unwrap();
        let e = load_manifest(&dir.join("dir.nest"), &Goal::OuterParallel).unwrap_err();
        assert!(matches!(e, ManifestError::Empty(_)), "{e}");
        std::fs::write(dir.join("m.txt"), "dir.nest\n").unwrap();
        let e = load_manifest(&dir.join("m.txt"), &Goal::OuterParallel).unwrap_err();
        assert!(matches!(e, ManifestError::Io(_, _)), "{e}");

        // Non-UTF-8 bytes in a .nest source.
        std::fs::write(dir.join("bin.nest"), [0xff, 0xfe, 0x00, 0x80]).unwrap();
        let e = load_manifest(&dir.join("bin.nest"), &Goal::OuterParallel).unwrap_err();
        assert!(matches!(e, ManifestError::Io(_, _)), "{e}");

        // A manifest line pointing at a missing file.
        std::fs::write(dir.join("m2.txt"), "absent.nest\n").unwrap();
        let e = load_manifest(&dir.join("m2.txt"), &Goal::OuterParallel).unwrap_err();
        assert!(matches!(e, ManifestError::Io(_, _)), "{e}");
        assert!(e.to_string().contains("absent.nest"), "{e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_and_broken_corpora_are_reported() {
        let dir = scratch_dir("err");
        assert!(matches!(
            load_manifest(&dir, &Goal::OuterParallel),
            Err(ManifestError::Empty(_))
        ));
        std::fs::write(dir.join("bad.nest"), "this is not a loop nest").unwrap();
        let err = load_manifest(&dir, &Goal::OuterParallel).unwrap_err();
        assert!(matches!(err, ManifestError::Parse(_, _)), "{err}");
        assert!(err.to_string().contains("bad.nest"));
        let missing = load_manifest(&dir.join("absent.list"), &Goal::OuterParallel).unwrap_err();
        assert!(matches!(missing, ManifestError::Io(_, _)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
