//! Work-stealing queues for the batch pool.
//!
//! One double-ended queue per worker. A worker pops its *own* queue from
//! the front (FIFO: early-submitted jobs first) and, when empty, scans
//! the other queues in ring order stealing from the *back* — the classic
//! split that keeps owners and thieves off each other's hot end.
//!
//! Jobs never enqueue further jobs, so termination is trivial: once a
//! full scan finds every queue empty, no job can ever reappear, and the
//! worker exits. The pool itself lives in `std::thread::scope`, so
//! workers are joined (leak-free) before [`run_batch`] returns.
//!
//! [`run_batch`]: crate::run_batch

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// One popped job and whether it was stolen from another worker's queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Popped {
    /// Index into the batch's job slice.
    pub(crate) job: usize,
    /// True when the job came from a queue this worker does not own.
    pub(crate) stolen: bool,
}

/// Per-worker job queues with steal accounting.
pub(crate) struct WorkQueues {
    queues: Vec<Mutex<VecDeque<usize>>>,
    steals: AtomicU64,
    remaining: AtomicUsize,
}

impl WorkQueues {
    pub(crate) fn new(workers: usize) -> WorkQueues {
        WorkQueues {
            queues: (0..workers.max(1)).map(|_| Mutex::default()).collect(),
            steals: AtomicU64::new(0),
            remaining: AtomicUsize::new(0),
        }
    }

    /// A poisoned queue lock only means a worker panicked while holding
    /// it; the deque is still valid, and draining it beats deadlocking
    /// the rest of the batch.
    fn lock(&self, k: usize) -> MutexGuard<'_, VecDeque<usize>> {
        self.queues[k]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Enqueues `job` on `worker`'s queue (modulo the pool size).
    pub(crate) fn push(&self, worker: usize, job: usize) {
        self.lock(worker % self.queues.len()).push_back(job);
        self.remaining.fetch_add(1, Ordering::Relaxed);
    }

    /// Next job for `worker`: own queue front first, then steal from the
    /// back of the other queues in ring order. `None` means the batch is
    /// drained (jobs are never re-enqueued, so this is final).
    pub(crate) fn pop(&self, worker: usize) -> Option<Popped> {
        let n = self.queues.len();
        let own = worker % n;
        if let Some(job) = self.lock(own).pop_front() {
            self.remaining.fetch_sub(1, Ordering::Relaxed);
            return Some(Popped { job, stolen: false });
        }
        for k in 1..n {
            let victim = (own + k) % n;
            if let Some(job) = self.lock(victim).pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                self.remaining.fetch_sub(1, Ordering::Relaxed);
                return Some(Popped { job, stolen: true });
            }
        }
        None
    }

    /// Total successful steals so far.
    pub(crate) fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Jobs still queued (approximate under concurrency; exact when
    /// quiescent).
    pub(crate) fn remaining(&self) -> usize {
        self.remaining.load(Ordering::Relaxed)
    }

    /// Number of worker queues.
    pub(crate) fn workers(&self) -> usize {
        self.queues.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn own_queue_is_fifo() {
        let q = WorkQueues::new(2);
        q.push(0, 10);
        q.push(0, 11);
        assert_eq!(
            q.pop(0),
            Some(Popped {
                job: 10,
                stolen: false
            })
        );
        assert_eq!(
            q.pop(0),
            Some(Popped {
                job: 11,
                stolen: false
            })
        );
        assert_eq!(q.pop(0), None);
        assert_eq!(q.steals(), 0);
    }

    #[test]
    fn steals_come_from_the_back_and_are_counted() {
        let q = WorkQueues::new(2);
        q.push(0, 10);
        q.push(0, 11);
        q.push(0, 12);
        // Worker 1 owns an empty queue: it must steal, newest-first.
        assert_eq!(
            q.pop(1),
            Some(Popped {
                job: 12,
                stolen: true
            })
        );
        assert_eq!(
            q.pop(0),
            Some(Popped {
                job: 10,
                stolen: false
            })
        );
        assert_eq!(
            q.pop(1),
            Some(Popped {
                job: 11,
                stolen: true
            })
        );
        assert_eq!(q.steals(), 2);
        assert_eq!(q.remaining(), 0);
        assert_eq!(q.pop(0), None);
        assert_eq!(q.pop(1), None);
    }

    #[test]
    fn ring_scan_visits_every_victim() {
        let q = WorkQueues::new(4);
        q.push(3, 7);
        assert_eq!(q.workers(), 4);
        assert_eq!(
            q.pop(1),
            Some(Popped {
                job: 7,
                stolen: true
            })
        );
        assert_eq!(q.pop(1), None);
    }

    #[test]
    fn push_wraps_worker_index() {
        let q = WorkQueues::new(2);
        q.push(5, 42); // 5 % 2 == worker 1
        assert_eq!(
            q.pop(1),
            Some(Popped {
                job: 42,
                stolen: false
            })
        );
    }
}
