//! # irlt — A General Framework for Iteration-Reordering Loop Transformations
//!
//! A production-quality Rust reproduction of **Vivek Sarkar & Radhika
//! Thekkath, PLDI 1992**: iteration-reordering transformations as
//! *sequences of template instantiations* from a small but extensible
//! kernel set, with uniform legality testing and uniform code generation.
//!
//! The workspace layers (each re-exported here):
//!
//! | module | contents |
//! |---|---|
//! | [`ir`] | loop-nest IR, expression language, parser, pretty-printer, the §4.1 type lattice |
//! | [`dependence`] | dependence vectors (`S(d_k)` semantics), `Tuples(D)` legality, ZIV/SIV/GCD/Banerjee analysis |
//! | [`unimodular`] | exact integer matrices, Fourier–Motzkin scanning, the unimodular baseline framework |
//! | [`core`] | the paper's contribution: Table 1 templates, Table 2 dependence rules, Tables 3–4 preconditions & codegen, sequences, fusion, [`core::catalog`] |
//! | [`affine`] | the second legality engine: composed affine schedules, per-dependence violation polytopes, Fourier–Motzkin rational emptiness, the cross-engine `Unknown` envelope |
//! | [`interp`] | loop-nest interpreter, differential equivalence checking, empirical dependences |
//! | [`cachesim`] | set-associative LRU cache + array layouts for locality studies |
//! | [`opt`] | goal-directed transformation search and empirical rule validation (the paper's "automatic transformation system" future work) |
//! | [`driver`] | batched multi-nest optimization: work-stealing pool, per-job deadlines with cooperative cancellation, cross-nest shared legality caching, the `irlt-batch` CLI |
//! | [`serve`] | the long-lived optimization service: `irlt-serve/v1` NDJSON protocol over Unix sockets, bounded admission with backpressure, per-request SLOs, snapshot rotation, graceful drain |
//! | [`obs`] | zero-dependency structured telemetry: counters, histograms, spans, JSON artifacts (`IRLT_TELEMETRY=path.json`) |
//!
//! # Quickstart
//!
//! ```
//! use irlt::prelude::*;
//!
//! // Parse the paper's Fig. 1(a) stencil.
//! let nest = parse_nest(
//!     "do i = 2, n - 1\n  do j = 2, n - 1\n    a(i, j) = (a(i, j) + a(i - 1, j) + a(i, j - 1) + a(i + 1, j) + a(i, j + 1)) / 5\n  enddo\nenddo",
//! )?;
//! // Analyze dependences from scratch.
//! let deps = analyze_dependences(&nest);
//! // Skew + interchange as a transformation sequence; test legality; emit.
//! let t = TransformSeq::new(2)
//!     .unimodular(IntMatrix::skew(2, 0, 1, 1))?
//!     .unimodular(IntMatrix::interchange(2, 0, 1))?;
//! assert!(t.is_legal(&nest, &deps).is_legal());
//! let out = t.fuse().apply(&nest)?;
//!
//! // Verify by execution: same final arrays.
//! let report = check_equivalence(&nest, &out, &[("n", 12)], 42)?;
//! assert!(report.is_equivalent());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use irlt_affine as affine;
pub use irlt_cachesim as cachesim;
pub use irlt_core as core;
pub use irlt_dependence as dependence;
pub use irlt_driver as driver;
pub use irlt_fuzz as fuzz;
pub use irlt_interp as interp;
pub use irlt_ir as ir;
pub use irlt_obs as obs;
pub use irlt_opt as opt;
pub use irlt_serve as serve;
pub use irlt_unimodular as unimodular;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use irlt_affine::{check_sequence, AffineOptions, AffineReport};
    pub use irlt_cachesim::{
        simulate_nest, simulate_nest_observed, AddressMap, Cache, CacheConfig, Order,
    };
    pub use irlt_core::{
        catalog, compare_domain, cross_check, BoundsMatrices, CompareDomain, CrossCheckOutcome,
        ExtendError, KernelTemplate, KeyMode, LegalityCache, LegalityReport, OracleVerdict,
        Permutation, SeqState, SharedLegalityCache, Template, TransformSeq,
    };
    pub use irlt_dependence::{
        analyze_dependences, analyze_dependences_detailed, DepElem, DepSet, DepVector, Dir,
    };
    pub use irlt_driver::{run_batch, BatchConfig, BatchResult, Job, JobResult, JobStatus};
    pub use irlt_fuzz::{run_campaign, CampaignConfig, CampaignReport, CoverageMap};
    pub use irlt_interp::{
        check_equivalence, empirical_dependences, Executor, Memory, PardoOrder, TraceLevel,
    };
    pub use irlt_ir::{
        classify, classify_bound, parse_expr, parse_nest, BoundSide, Expr, ExprType, Loop,
        LoopKind, LoopNest, Parser, Stmt, Symbol,
    };
    pub use irlt_obs::{Report, Telemetry};
    pub use irlt_opt::{
        default_test_nests, search, validate_template, Goal, LocalityGoal, MoveCatalog,
        SearchConfig,
    };
    pub use irlt_serve::{ServeConfig, ServeSummary, Server, ServerHandle, SnapshotPolicy};
    pub use irlt_unimodular::{IntMatrix, UnimodularTransform};
}
