//! Batch optimization of a whole corpus of loop nests: the `irlt-driver`
//! work-stealing pool with per-job deadlines, cooperative cancellation,
//! and one cross-nest shared legality cache.
//!
//! ```text
//! cargo run --example batch_corpus
//! IRLT_TELEMETRY=telemetry.json cargo run --example batch_corpus
//! ```
//!
//! Three acts:
//!
//! 1. a 32-job corpus sharded across 4 workers, showing cross-nest
//!    legality sharing (structurally identical nests replay each other's
//!    subproblems bit-identically);
//! 2. the same corpus with one pathological deep job on a 5ms deadline —
//!    it comes back `timed_out` holding its best-so-far *legal*
//!    candidate while every other job is untouched;
//! 3. the whole-batch JSON artifact, the machine-readable record a
//!    build system would archive.

use irlt::driver::{demo_corpus, run_batch, BatchConfig, Job};
use irlt::prelude::*;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tel = Telemetry::from_env();

    // Act 1: the corpus. 32 jobs over 8 distinct nest shapes — a
    // duplicate-heavy profile, like a real compilation unit.
    let jobs = demo_corpus(32);
    let config = BatchConfig {
        threads: 4,
        telemetry: tel.clone(),
        ..BatchConfig::default()
    };
    let result = run_batch(&jobs, &config);
    println!("== batch: {result}");
    for job in result.jobs.iter().take(4) {
        println!("   {job}");
    }
    println!("   … ({} more)", result.jobs.len() - 4);
    let stats = result.cache.expect("shared cache is on by default");
    println!(
        "   cross-nest sharing: {} of {} legality extensions replayed from another job's work",
        stats.cross_hits,
        stats.hits + stats.misses
    );

    // Act 2: deadlines. A depth-6 nest at beam 64 cannot finish in 5ms;
    // the deadline fires mid-search and the job returns its best legal
    // prefix, with the rest of the batch bit-identical to act 1.
    let deep = parse_nest(
        "do i1 = 1, n\n do i2 = 1, n\n  do i3 = 1, n\n   do i4 = 1, n\n    do i5 = 1, n\n     do i6 = 1, n\n      a(i1, i2, i3, i4, i5, i6) = a(i1, i2, i3, i4, i5, i6) + 1\n     enddo\n    enddo\n   enddo\n  enddo\n enddo\nenddo",
    )?;
    let mut with_deadline = jobs.clone();
    with_deadline.push(
        Job::new("pathological", deep, Goal::InnerParallel)
            .with_search(8, 64)
            .with_deadline(Duration::from_millis(5)),
    );
    let r2 = run_batch(&with_deadline, &config);
    let bad = r2.jobs.last().expect("pathological job present");
    println!("== deadline: {bad}");
    assert!(
        !bad.status.is_completed(),
        "5ms cannot cover a depth-6 search"
    );
    assert!(
        r2.jobs[..jobs.len()]
            .iter()
            .zip(&result.jobs)
            .all(|(a, b)| a.best.seq.to_string() == b.best.seq.to_string()),
        "other jobs must be unaffected by the timeout"
    );
    println!(
        "   other {} jobs: bit-identical to the deadline-free batch",
        jobs.len()
    );

    // Act 3: the artifact.
    let artifact = r2.to_json();
    println!(
        "== artifact: schema {}, {} bytes pretty-printed",
        artifact
            .get("schema")
            .and_then(irlt::obs::Json::as_str)
            .unwrap_or("?"),
        artifact.to_string_pretty().len()
    );

    if tel.is_enabled() {
        println!("== telemetry ==\n{}", tel.report().render());
        if let Some(path) = tel.write_env_report()? {
            println!("telemetry artifact written to {}", path.display());
        }
    }
    Ok(())
}
