//! Transformation *recipes* as text: serialize a sequence to the script
//! format, reload it, explain its stage-by-stage effect (the Fig. 7
//! table), and emit the final nest as C — the full tool-chain workflow
//! around the framework.
//!
//! ```text
//! cargo run --example recipe_script
//! ```

use irlt::ir::{c_prelude, emit_c, CEmitOptions};
use irlt::prelude::*;

const RECIPE: &str = "
# Appendix A: matmul tiling + parallelization recipe
n = 3
reverse_permute rev=[F F F] perm=[2 0 1]
block i=0 j=2 bsize=[bj; bk; bi]
parallelize flags=[1 0 1 0 0 0]
reverse_permute rev=[F F F F F F] perm=[0 2 1 3 4 5]
coalesce i=0 j=1
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nest = parse_nest(
        "do i = 1, n
           do j = 1, n
             do k = 1, n
               A(i, j) = A(i, j) + B(i, k) * C(k, j)
             enddo
           enddo
         enddo",
    )?;
    let deps = analyze_dependences(&nest);

    // 1. Load the recipe from text.
    let seq = TransformSeq::from_script(RECIPE)?;
    println!("loaded recipe with {} steps: {seq}\n", seq.len());

    // 2. Round-trip check: serialize back.
    let reserialized = seq.to_script()?;
    assert_eq!(
        TransformSeq::from_script(&reserialized)?.to_script()?,
        reserialized
    );
    println!("canonical script:\n{reserialized}");

    // 3. Legality + stage-by-stage explanation (the Fig. 7 table).
    assert!(seq.is_legal(&nest, &deps).is_legal());
    println!("{}", seq.explain(&nest, &deps)?);

    // 4. Generate and export as C.
    let out = seq.apply(&nest)?;
    println!(
        "== emitted C ==\n{}{}",
        c_prelude(),
        emit_c(&out, &CEmitOptions::default())
    );

    // 5. And, as always, verify by execution.
    let report = check_equivalence(&nest, &out, &[("n", 6), ("bj", 2), ("bk", 3), ("bi", 2)], 7)?;
    println!("verified: {report}");
    assert!(report.is_equivalent());
    Ok(())
}
