//! The Appendix A showcase: matrix multiply through the non-trivial
//! five-template sequence
//!
//! ```text
//! ReversePermute → Block → Parallelize → ReversePermute → Coalesce
//! ```
//!
//! printing the evolving dependence vectors at each stage (the rows of
//! Fig. 7), generating the final 5-deep nest, verifying it by execution
//! with ragged block sizes, and measuring the locality effect of the
//! blocking with the cache simulator.
//!
//! ```text
//! cargo run --example matmul_tiling
//! ```

use irlt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nest = parse_nest(
        "do i = 1, n
           do j = 1, n
             do k = 1, n
               A(i, j) = A(i, j) + B(i, k) * C(k, j)
             enddo
           enddo
         enddo",
    )?;
    println!("== Figure 6: input loop nest ==\n{nest}");

    let deps = analyze_dependences(&nest);
    let show = |label: &str, d: &DepSet| {
        let strs: Vec<String> = d.iter().map(|v| v.paper_str()).collect();
        println!("{label:<16} D = {{{}}}", strs.join(", "));
    };
    show("START", &deps);

    // Build the sequence incrementally, reporting each stage like Fig. 7.
    let b = |s: &str| Expr::var(s);
    let stages: Vec<(&str, TransformSeq)> = {
        let s1 = TransformSeq::new(3).reverse_permute(vec![false; 3], vec![2, 0, 1])?;
        let s2 = s1.clone().block(0, 2, vec![b("bj"), b("bk"), b("bi")])?;
        let s3 = s2
            .clone()
            .parallelize(vec![true, false, true, false, false, false])?;
        let s4 = s3
            .clone()
            .reverse_permute(vec![false; 6], vec![0, 2, 1, 3, 4, 5])?;
        let s5 = s4.clone().coalesce(0, 1)?;
        vec![
            ("ReversePermute", s1),
            ("Block", s2),
            ("Parallelize", s3),
            ("ReversePermute", s4),
            ("Coalesce", s5),
        ]
    };
    for (label, seq) in &stages {
        show(label, &seq.map_deps(&deps));
    }
    let full = &stages.last().expect("five stages").1;

    let verdict = full.is_legal(&nest, &deps);
    println!("\nIsLegal = {verdict}");
    assert!(verdict.is_legal());

    let out = full.apply(&nest)?;
    println!("\n== Figure 7: final transformed nest ==\n{out}");

    // Verify with ragged tile sizes (tiles that do not divide n).
    for (n, bj, bk, bi) in [(8, 3, 2, 5), (9, 4, 4, 4)] {
        let report = check_equivalence(
            &nest,
            &out,
            &[("n", n), ("bj", bj), ("bk", bk), ("bi", bi)],
            99,
        )?;
        println!("n={n} tiles=({bj},{bk},{bi}): {report}");
        assert!(report.is_equivalent());
    }

    // Locality: tiled vs untiled matmul under a small cache. (Parallelism
    // aside — compare the pure Block stage against the original.)
    let tiled = TransformSeq::new(3)
        .block(0, 2, vec![b("bi"), b("bj"), b("bk")])?
        .apply(&nest)?;
    let mut map = AddressMap::new(Order::ColMajor, 8);
    let n = 48;
    map.declare("A", &[n as u64, n as u64]);
    map.declare("B", &[n as u64, n as u64]);
    map.declare("C", &[n as u64, n as u64]);
    let cfg = CacheConfig {
        size_bytes: 4 * 1024,
        line_bytes: 64,
        associativity: 4,
    };
    let base = simulate_nest(&nest, &[("n", n)], &map, cfg)?;
    println!("\nsimulated misses, n={n}, 4 KiB cache:");
    println!("  untiled      : {}", base.stats);
    for bs in [4, 8, 16] {
        let r = simulate_nest(
            &tiled,
            &[("n", n), ("bi", bs), ("bj", bs), ("bk", bs)],
            &map,
            cfg,
        )?;
        println!("  tiled b={bs:<3}  : {}", r.stats);
        assert!(
            r.stats.misses < base.stats.misses,
            "tiling must reduce misses"
        );
    }
    Ok(())
}
