//! Quickstart: parse a nest, analyze dependences, build a transformation
//! sequence, test legality, generate code, and verify by execution.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use irlt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A perfect loop nest in the paper's concrete syntax (Fig. 1(a)).
    let nest = parse_nest(
        "do i = 2, n - 1
           do j = 2, n - 1
             a(i, j) = (a(i, j) + a(i - 1, j) + a(i, j - 1) + a(i + 1, j) + a(i, j + 1)) / 5
           enddo
         enddo",
    )?;
    println!("== original nest ==\n{nest}");

    // 2. Dependence analysis (ZIV / SIV / GCD / Banerjee under direction
    //    hierarchy), from scratch.
    let deps = analyze_dependences(&nest);
    println!("dependence vectors D = {deps}\n");

    // 3. A transformation is a *sequence of template instantiations*:
    //    here skew-then-interchange, the paper's Fig. 1 example.
    let t = TransformSeq::new(2)
        .unimodular(IntMatrix::skew(2, 0, 1, 1))?
        .unimodular(IntMatrix::interchange(2, 0, 1))?;
    println!("transformation T = {t}");

    // 4. The uniform legality test: dependence part + bounds preconditions.
    let verdict = t.is_legal(&nest, &deps);
    println!("IsLegal(T, N) = {verdict}");
    assert!(verdict.is_legal());

    // 5. Peephole fusion (two Unimodulars multiply into one), then code
    //    generation with initialization statements.
    let fused = t.fuse();
    println!("fused           = {fused}");
    let out = fused.apply(&nest)?;
    println!("\n== transformed nest ==\n{out}");

    // 6. Mapped dependence set — no reanalysis of the transformed nest.
    println!("transformed D' = {}", t.map_deps(&deps));

    // 7. Trust, but verify: run both nests from identical pseudo-random
    //    arrays and compare every touched cell.
    let report = check_equivalence(&nest, &out, &[("n", 30)], 2024)?;
    println!("\ndifferential check: {report}");
    assert!(report.is_equivalent());
    Ok(())
}
