//! Extending the kernel set — "the framework is extensible, and can be
//! used to represent any iteration-reordering transformation."
//!
//! Defines a user template, `OffsetShift(n, k, c)`, that translates loop
//! `k`'s iteration space by a constant `c` (`x_k → x_k + c`): the bounds
//! shift, an initialization statement rebinds the original variable, and —
//! since iteration *order* is untouched — the dependence mapping is the
//! identity. The custom template then participates in sequences, the
//! uniform legality test, fusion-adjacent composition, and code generation
//! exactly like the built-in six.
//!
//! ```text
//! cargo run --example custom_template
//! ```

use irlt::core::{ApplyError, KernelTemplate, PrecondError};
use irlt::prelude::*;
use std::sync::Arc;

/// `x_k → x_k + c`: an iteration-space translation of one loop.
#[derive(Debug)]
struct OffsetShift {
    n: usize,
    k: usize,
    c: i64,
}

impl KernelTemplate for OffsetShift {
    fn template_name(&self) -> String {
        format!("OffsetShift(n={}, k={}, c={})", self.n, self.k, self.c)
    }

    fn input_size(&self) -> usize {
        self.n
    }

    fn output_size(&self) -> usize {
        self.n
    }

    /// Rule 1 (dependence mapping): a translation preserves iteration
    /// differences — identity.
    fn map_dep_vector(&self, d: &DepVector) -> Vec<DepVector> {
        vec![d.clone()]
    }

    /// Rule 2 (preconditions): none beyond the depth check — any bounds
    /// can be shifted.
    fn check_preconditions(&self, nest: &LoopNest) -> Result<(), PrecondError> {
        if nest.depth() != self.n {
            return Err(PrecondError::DepthMismatch {
                expected: self.n,
                found: nest.depth(),
            });
        }
        Ok(())
    }

    /// Rule 3 (code generation): shift the loop's own bounds by `c`,
    /// substitute `x_k − c` for `x_k` in *inner* bounds that reference it,
    /// and prepend the initialization `x_k = x'_k − c` — except the new
    /// variable reuses the old name, so the paper's "special effort to
    /// reuse original index variable names" applies: we emit the init
    /// against a fresh name only when inner bounds force it. For clarity
    /// this example always renames (`i` → `is`).
    fn apply_to(&self, nest: &LoopNest) -> Result<LoopNest, ApplyError> {
        self.check_preconditions(nest)?;
        let old = nest.level(self.k).var.clone();
        let taken = nest.all_scalar_symbols();
        let new = Symbol::new(format!("{old}s")).freshen(|s| taken.contains(s));
        let c = Expr::int(self.c);
        let rebind = Expr::var(new.clone()) - c.clone();

        let mut loops: Vec<Loop> = Vec::with_capacity(self.n);
        for (lvl, l) in nest.loops().iter().enumerate() {
            if lvl == self.k {
                loops.push(Loop {
                    var: new.clone(),
                    lower: (l.lower.clone() + c.clone()).simplify(),
                    upper: (l.upper.clone() + c.clone()).simplify(),
                    step: l.step.clone(),
                    kind: l.kind,
                });
            } else {
                // Inner bounds referencing the shifted variable see the
                // rebound expression.
                let subst = |v: &Symbol| (v == &old).then(|| rebind.clone());
                loops.push(Loop {
                    var: l.var.clone(),
                    lower: l.lower.substitute(&subst).simplify(),
                    upper: l.upper.substitute(&subst).simplify(),
                    step: l.step.clone(),
                    kind: l.kind,
                });
            }
        }
        let mut inits = vec![Stmt::scalar(old, rebind.simplify())];
        inits.extend(nest.inits().iter().cloned());
        Ok(LoopNest::with_inits(loops, inits, nest.body().to_vec()))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nest = parse_nest(
        "do i = 1, n
           do j = 1, i
             a(i, j) = a(i - 1, j) + 1
           enddo
         enddo",
    )?;
    let deps = analyze_dependences(&nest);
    println!("== original ==\n{nest}\nD = {deps}\n");

    // A sequence mixing a *custom* template with built-ins: shift i by 10,
    // then strip-mine the (triangular) inner loop.
    let t = TransformSeq::new(2)
        .push_custom(Arc::new(OffsetShift { n: 2, k: 0, c: 10 }))?
        .block(1, 1, vec![Expr::int(4)])?;
    println!("T = {t}");

    let verdict = t.is_legal(&nest, &deps);
    println!("IsLegal = {verdict}");
    assert!(verdict.is_legal());

    let out = t.apply(&nest)?;
    println!("\n== transformed ==\n{out}");

    // The shifted loop really runs 11..=n+10 and the body still sees the
    // original i values.
    assert_eq!(out.level(0).lower, Expr::int(11));
    let report = check_equivalence(&nest, &out, &[("n", 17)], 5)?;
    println!("differential check: {report}");
    assert!(report.is_equivalent());

    // The custom template also composes on the *dependence* side: mapping
    // through the whole sequence still flags an illegal follow-up.
    let illegal = TransformSeq::new(2)
        .push_custom(Arc::new(OffsetShift { n: 2, k: 0, c: 10 }))?
        .parallelize(vec![true, false])?;
    let verdict = illegal.is_legal(&nest, &deps);
    println!("\nshift-then-parallelize(i): {verdict}");
    assert!(
        !verdict.is_legal(),
        "the i-carried dependence survives the shift"
    );
    Ok(())
}
