//! Wavefront parallelization of a 2-D stencil — Lamport's hyperplane
//! method recovered as a three-template sequence (skew, interchange,
//! parallelize), exactly the kind of composite the framework was built
//! for.
//!
//! Shows: why the naive parallelization is rejected, how the wavefront
//! sequence becomes legal, that the result is executably equivalent under
//! shuffled `pardo` orders, and what the transformation does to simulated
//! cache behaviour.
//!
//! ```text
//! cargo run --example stencil_wavefront
//! ```

use irlt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nest = parse_nest(
        "do i = 2, n - 1
           do j = 2, n - 1
             a(i, j) = a(i - 1, j) + a(i, j - 1)
           enddo
         enddo",
    )?;
    let deps = analyze_dependences(&nest);
    println!("stencil dependences: {deps}");

    // Naive: just mark a loop pardo. Both choices are illegal — each loop
    // carries a dependence.
    for (label, flags) in [("outer", vec![true, false]), ("inner", vec![false, true])] {
        let t = TransformSeq::new(2).parallelize(flags)?;
        let verdict = t.is_legal(&nest, &deps);
        println!("parallelize {label}: {verdict}");
        assert!(!verdict.is_legal());
    }

    // The wavefront: skew j by i, interchange, then the *inner* loop
    // carries nothing.
    let wavefront = catalog::wavefront2()?;
    let verdict = wavefront.is_legal(&nest, &deps);
    println!("\nwavefront {wavefront}: {verdict}");
    assert!(verdict.is_legal());

    let out = wavefront.apply(&nest)?;
    println!("\n== wavefront-parallel nest ==\n{out}");
    assert!(out.level(1).kind.is_parallel());

    // Equivalent under forward/reverse/shuffled pardo orders.
    let report = check_equivalence(&nest, &out, &[("n", 40)], 7)?;
    println!("differential check ({} pardo orders): {report}", 4);
    assert!(report.is_equivalent());

    // Locality price of the wavefront: diagonal traversal loses spatial
    // locality relative to the original column walk. Measure it.
    let mut map = AddressMap::new(Order::ColMajor, 8);
    map.declare("a", &[128, 128]);
    let cfg = CacheConfig {
        size_bytes: 8 * 1024,
        line_bytes: 64,
        associativity: 4,
    };
    let before = simulate_nest(&nest, &[("n", 128)], &map, cfg)?;
    let after = simulate_nest(&out, &[("n", 128)], &map, cfg)?;
    println!("\nsimulated L1 misses (col-major a(128×128), 8 KiB cache):");
    println!("  original : {}", before.stats);
    println!("  wavefront: {}", after.stats);
    let ratio = after.stats.misses as f64 / before.stats.misses.max(1) as f64;
    println!(
        "  → miss ratio after/before = {ratio:.2}: the optimizer (the framework's\n    *client*) weighs this against the parallelism gained."
    );
    Ok(())
}
