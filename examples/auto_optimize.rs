//! The paper's future-work vision, running: "using this framework in an
//! automatic transformation system, so as to optimize loop nests for data
//! locality, parallel execution, and vector execution."
//!
//! A beam search over template sequences — legality-vetted by the
//! framework's uniform test, scored per goal — optimizes three kernels,
//! and the empirical rule checker vets a user template before use.
//!
//! ```text
//! cargo run --example auto_optimize
//! IRLT_TELEMETRY=telemetry.json cargo run --example auto_optimize
//! ```
//!
//! With `IRLT_TELEMETRY` set, every search records beam statistics,
//! legality-cache counters, and dependence-mapping fan-out; the rendered
//! report is printed and the JSON artifact written to the named path.

use irlt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tel = Telemetry::from_env();
    parallel_execution(&tel)?;
    vector_execution(&tel)?;
    data_locality(&tel)?;
    rule_checking();
    if tel.is_enabled() {
        println!("== telemetry ==\n{}", tel.report().render());
        if let Some(path) = tel.write_env_report()? {
            println!("telemetry artifact written to {}", path.display());
        }
    }
    Ok(())
}

fn parallel_execution(tel: &Telemetry) -> Result<(), Box<dyn std::error::Error>> {
    // Stencil: every loop carries a dependence; only a skewed wavefront
    // (or similar) exposes parallelism. The search must *discover* the
    // enabling step.
    let nest = parse_nest(
        "do i = 2, n - 1
           do j = 2, n - 1
             a(i, j) = a(i - 1, j) + a(i, j - 1)
           enddo
         enddo",
    )?;
    let deps = analyze_dependences(&nest);
    println!("== goal: parallel execution (stencil, D = {deps}) ==");
    let cfg = SearchConfig {
        catalog: MoveCatalog::parallelism(),
        max_steps: 3,
        beam_width: 12,
        telemetry: tel.clone(),
        ..SearchConfig::default()
    };
    let found = search(&nest, &deps, &Goal::OuterParallel, &cfg);
    println!("{found}");
    println!("{}", found.best.shape);
    assert!(found
        .best
        .shape
        .loops()
        .iter()
        .any(|l| l.kind.is_parallel()));
    // Always verify what a search returns.
    let out = found.best.seq.apply(&nest)?;
    let check = check_equivalence(&nest, &out, &[("n", 12)], 1)?;
    assert!(check.is_equivalent());
    println!("verified: {check}\n");
    Ok(())
}

fn vector_execution(tel: &Telemetry) -> Result<(), Box<dyn std::error::Error>> {
    // Column recurrence: i carries, j is free — vectorization wants the
    // free loop innermost and pardo.
    let nest = parse_nest(
        "do j = 1, m
           do i = 2, n
             a(i, j) = a(i - 1, j) * 3
           enddo
         enddo",
    )?;
    let deps = analyze_dependences(&nest);
    println!("== goal: vector execution (column recurrence, D = {deps}) ==");
    let cfg = SearchConfig {
        telemetry: tel.clone(),
        ..SearchConfig::default()
    };
    let found = search(&nest, &deps, &Goal::InnerParallel, &cfg);
    println!("{found}");
    println!("{}", found.best.shape);
    let inner = found.best.shape.level(found.best.shape.depth() - 1);
    assert!(inner.kind.is_parallel(), "innermost loop should be pardo");
    Ok(())
}

fn data_locality(tel: &Telemetry) -> Result<(), Box<dyn std::error::Error>> {
    // Matmul under a small cache: the search should pick a tiling.
    let nest = parse_nest(
        "do i = 1, n
           do j = 1, n
             do k = 1, n
               A(i, j) = A(i, j) + B(i, k) * C(k, j)
             enddo
           enddo
         enddo",
    )?;
    let deps = analyze_dependences(&nest);
    let n = 32u64;
    let mut map = AddressMap::new(Order::ColMajor, 8);
    for a in ["A", "B", "C"] {
        map.declare(a, &[n, n]);
    }
    let goal = Goal::Locality(LocalityGoal {
        params: vec![("n".into(), n as i64)],
        map,
        cache: CacheConfig {
            size_bytes: 4 * 1024,
            line_bytes: 64,
            associativity: 4,
        },
    });
    println!("== goal: data locality (matmul, n={n}, 4 KiB cache) ==");
    let base = goal.score(&nest).expect("scoreable");
    let cfg = SearchConfig {
        catalog: MoveCatalog::locality(),
        max_steps: 1,
        beam_width: 6,
        telemetry: tel.clone(),
        ..SearchConfig::default()
    };
    let found = search(&nest, &deps, &goal, &cfg);
    println!("{found}");
    println!(
        "misses: {} -> {} ({:.1}x better)\n{}",
        -base,
        -found.best.score,
        base / found.best.score,
        found.best.shape
    );
    assert!(found.best.score > base);
    Ok(())
}

fn rule_checking() {
    // Vet the built-in Block template against the standard battery — and
    // show the checker has teeth by summarizing what it validates.
    let t = Template::block(2, 0, 1, vec![Expr::int(3), Expr::int(3)]).expect("valid");
    let report = validate_template(&t, &default_test_nests(), 99);
    println!("== rule checking: {t} ==");
    println!("{report}");
    assert!(report.is_consistent());
    assert!(report.applied > 0);
}
