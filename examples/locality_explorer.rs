//! Locality exploration: sweep tile sizes for blocked matrix multiply and
//! array-walk orders for a transposition kernel, printing miss-rate tables
//! from the cache simulator. This is the workload the paper's framework is
//! *for*: cheaply evaluating many alternative transformations of one nest
//! ("a loop nest remains unchanged while the transformation system
//! considers the legality and effectiveness of applying various
//! alternative transformations").
//!
//! ```text
//! cargo run --example locality_explorer
//! IRLT_TELEMETRY=telemetry.json cargo run --example locality_explorer
//! ```
//!
//! With `IRLT_TELEMETRY` set, the sweep's cache counters are aggregated
//! (`cachesim/*`) and written to the named JSON artifact.

use irlt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tel = Telemetry::from_env();
    matmul_tile_sweep(&tel)?;
    transpose_interchange()?;
    hierarchy_view()?;
    if let Some(path) = tel.write_env_report()? {
        println!("telemetry artifact written to {}", path.display());
    }
    Ok(())
}

/// Where does tiling's benefit land? Replay the same traces through a
/// two-level hierarchy and compare weighted costs.
fn hierarchy_view() -> Result<(), Box<dyn std::error::Error>> {
    use irlt::cachesim::{Hierarchy, Latencies};
    use irlt::interp::{Executor, Memory, TraceLevel};

    let nest = parse_nest(
        "do i = 1, n
           do j = 1, n
             do k = 1, n
               A(i, j) = A(i, j) + B(i, k) * C(k, j)
             enddo
           enddo
         enddo",
    )?;
    let tiled = TransformSeq::new(3)
        .block(0, 2, vec![Expr::int(8), Expr::int(8), Expr::int(8)])?
        .apply(&nest)?;

    let n: i64 = 40;
    let mut map = AddressMap::new(Order::ColMajor, 8);
    for a in ["A", "B", "C"] {
        map.declare(a, &[n as u64, n as u64]);
    }
    let l1 = CacheConfig {
        size_bytes: 4 * 1024,
        line_bytes: 64,
        associativity: 4,
    };
    let l2 = CacheConfig {
        size_bytes: 64 * 1024,
        line_bytes: 64,
        associativity: 8,
    };

    println!("\n== two-level view (L1 4 KiB, L2 64 KiB, lat 4/12/100) ==");
    let run = |label: &str, nest: &LoopNest| -> Result<u64, Box<dyn std::error::Error>> {
        let mut ex = Executor::new();
        ex.set_param("n", n);
        ex.trace(TraceLevel::Accesses);
        let result = ex.run(nest, Memory::new())?;
        let mut h = Hierarchy::new(l1, l2, Latencies::default());
        map.drive(&result.trace, |addr| h.access(addr))?;
        println!("  {label:<8} {h}");
        Ok(h.cost())
    };
    let base = run("untiled", &nest)?;
    let opt = run("tiled 8", &tiled)?;
    println!("  → weighted cost ratio: {:.2}×", base as f64 / opt as f64);
    assert!(opt < base);
    Ok(())
}

fn matmul_tile_sweep(tel: &Telemetry) -> Result<(), Box<dyn std::error::Error>> {
    let nest = parse_nest(
        "do i = 1, n
           do j = 1, n
             do k = 1, n
               A(i, j) = A(i, j) + B(i, k) * C(k, j)
             enddo
           enddo
         enddo",
    )?;
    let deps = analyze_dependences(&nest);

    let n: i64 = 40;
    let mut map = AddressMap::new(Order::ColMajor, 8);
    for a in ["A", "B", "C"] {
        map.declare(a, &[n as u64, n as u64]);
    }
    let cfg = CacheConfig {
        size_bytes: 4 * 1024,
        line_bytes: 64,
        associativity: 4,
    };

    println!("== blocked matmul: tile-size sweep (n={n}, 4 KiB L1) ==");
    println!(
        "{:<12} {:>12} {:>12} {:>9}",
        "variant", "accesses", "misses", "miss%"
    );
    let base = simulate_nest_observed(&nest, &[("n", n)], &map, cfg, tel)?;
    println!(
        "{:<12} {:>12} {:>12} {:>8.2}%",
        "untiled",
        base.stats.accesses,
        base.stats.misses,
        100.0 * base.stats.miss_ratio()
    );

    let mut best: Option<(i64, u64)> = None;
    for bs in [2, 4, 8, 12, 16, 24] {
        let seq =
            TransformSeq::new(3).block(0, 2, vec![Expr::int(bs), Expr::int(bs), Expr::int(bs)])?;
        // Always legal for matmul's (0,0,+) dependence — the framework
        // confirms rather than assumes.
        assert!(seq.is_legal(&nest, &deps).is_legal());
        let tiled = seq.apply(&nest)?;
        let r = simulate_nest_observed(&tiled, &[("n", n)], &map, cfg, tel)?;
        println!(
            "{:<12} {:>12} {:>12} {:>8.2}%",
            format!("b={bs}"),
            r.stats.accesses,
            r.stats.misses,
            100.0 * r.stats.miss_ratio()
        );
        if best.is_none_or(|(_, m)| r.stats.misses < m) {
            best = Some((bs, r.stats.misses));
        }
    }
    let (bs, misses) = best.expect("swept");
    println!(
        "→ best tile b={bs}: {:.1}× fewer misses than untiled\n",
        base.stats.misses as f64 / misses as f64
    );
    assert!(misses < base.stats.misses);
    Ok(())
}

fn transpose_interchange() -> Result<(), Box<dyn std::error::Error>> {
    // b(i,j) = a(j,i): whichever loop order you pick, one array is walked
    // against its layout; tiling fixes both at once.
    let nest = parse_nest(
        "do i = 1, n
           do j = 1, n
             b(i, j) = a(j, i)
           enddo
         enddo",
    )?;
    let deps = analyze_dependences(&nest);
    assert!(deps.is_empty());

    let n: i64 = 64;
    let mut map = AddressMap::new(Order::ColMajor, 8);
    map.declare("a", &[n as u64, n as u64]);
    map.declare("b", &[n as u64, n as u64]);
    let cfg = CacheConfig {
        size_bytes: 4 * 1024,
        line_bytes: 64,
        associativity: 4,
    };

    println!("== transpose: interchange vs tiling (n={n}, 4 KiB L1) ==");
    let base = simulate_nest(&nest, &[("n", n)], &map, cfg)?;
    println!("original (i,j) : {}", base.stats);

    let swapped = TransformSeq::new(2)
        .reverse_permute(vec![false, false], vec![1, 0])?
        .apply(&nest)?;
    let r_swap = simulate_nest(&swapped, &[("n", n)], &map, cfg)?;
    println!("interchanged   : {}", r_swap.stats);

    let tiled = TransformSeq::new(2)
        .block(0, 1, vec![Expr::int(8), Expr::int(8)])?
        .apply(&nest)?;
    let r_tile = simulate_nest(&tiled, &[("n", n)], &map, cfg)?;
    println!("tiled 8×8      : {}", r_tile.stats);

    // Interchange merely moves the problem from one array to the other;
    // tiling beats both orders.
    assert!(r_tile.stats.misses < base.stats.misses);
    assert!(r_tile.stats.misses < r_swap.stats.misses);
    println!(
        "→ tiling wins: {:.1}× fewer misses than the best untiled order",
        base.stats.misses.min(r_swap.stats.misses) as f64 / r_tile.stats.misses as f64
    );
    Ok(())
}
